package experiments

import (
	"time"

	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/spectrum"
	"repro/internal/stats"
)

// timeIt returns the average wall-clock duration of f over iters
// executions (at least one).
func timeIt(iters int, f func()) time.Duration {
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		f()
	}
	return time.Since(start) / time.Duration(iters)
}

// detectOn computes the spectrum of a fresh mp3 trace of duration h
// and runs the heuristic with the given configuration.
func detectOn(seed uint64, h simtime.Duration, band spectrum.Band, cfg spectrum.DetectConfig) (spectrum.Detection, *spectrum.Spectrum) {
	events := mp3Trace(seed, h, noLoad)
	s := spectrum.Compute(events, band)
	return spectrum.Detect(s, cfg), s
}

// Fig6Point is one (H, δf) cell of Figure 6.
type Fig6Point struct {
	HorizonS  float64
	DeltaF    float64
	AvgTimeMS float64 // wall time of the transform on this host
	Ops       int64   // complex exponentials (Eq. 3), host-independent
	FreqMean  float64
	FreqStd   float64
}

// Fig6Result reproduces Figure 6: transform cost and detection
// precision vs the observation horizon H, for several δf, at
// fmax = 100 Hz.
type Fig6Result struct {
	Points []Fig6Point
	// TimeFitR2 maps δf to the R² of a linear fit of time vs H; the
	// paper's claim is linearity (Eq. 3). Wall-clock noise makes this
	// meaningful only with enough repetitions.
	TimeFitR2 map[float64]float64
	// OpsFitR2 is the same fit on the deterministic operation count,
	// the host-independent form of the linearity claim.
	OpsFitR2 map[float64]float64
}

// Fig6 sweeps H ∈ {0.5,1,1.5,2}s and δf ∈ {0.1,0.2,0.5}Hz with `reps`
// repetitions per cell (the paper uses 100).
func Fig6(seed uint64, reps int) Fig6Result {
	if reps <= 0 {
		reps = 100
	}
	horizons := []simtime.Duration{500 * simtime.Millisecond, simtime.Second,
		1500 * simtime.Millisecond, 2 * simtime.Second}
	deltas := []float64{0.1, 0.2, 0.5}
	res := Fig6Result{TimeFitR2: make(map[float64]float64), OpsFitR2: make(map[float64]float64)}
	for _, df := range deltas {
		band := spectrum.Band{FMin: 1, FMax: 100, DeltaF: df}
		var hs, ts, os []float64
		for _, h := range horizons {
			var freqs []float64
			var opsTotal int64
			var elapsed time.Duration
			for rep := 0; rep < reps; rep++ {
				events := mp3TraceFixed(seed+uint64(rep)*101, h)
				var s *spectrum.Spectrum
				elapsed += timeIt(1, func() { s = spectrum.Compute(events, band) })
				opsTotal += s.Ops
				if d := spectrum.Detect(s, spectrum.DefaultDetect); d.Periodic {
					freqs = append(freqs, d.Frequency)
				}
			}
			pt := Fig6Point{
				HorizonS:  h.Seconds(),
				DeltaF:    df,
				AvgTimeMS: float64(elapsed.Microseconds()) / float64(reps) / 1e3,
				Ops:       opsTotal / int64(reps),
				FreqMean:  stats.Mean(freqs),
				FreqStd:   stats.Std(freqs),
			}
			res.Points = append(res.Points, pt)
			hs = append(hs, pt.HorizonS)
			ts = append(ts, pt.AvgTimeMS)
			os = append(os, float64(pt.Ops))
		}
		res.TimeFitR2[df] = stats.FitLine(hs, ts).R2
		res.OpsFitR2[df] = stats.FitLine(hs, os).R2
	}
	return res
}

// Series renders Figure 6 as two CSV series (overhead and precision).
func (r Fig6Result) Series() (*report.Series, *report.Series) {
	over := report.NewSeries("Figure 6a: transform time (ms) vs H, fmax=100Hz",
		"H_s", "deltaF_Hz", "time_ms", "ops")
	prec := report.NewSeries("Figure 6b: detected frequency vs H, fmax=100Hz",
		"H_s", "deltaF_Hz", "freq_mean_Hz", "freq_std_Hz")
	for _, p := range r.Points {
		over.Add(p.HorizonS, p.DeltaF, p.AvgTimeMS, float64(p.Ops))
		prec.Add(p.HorizonS, p.DeltaF, p.FreqMean, p.FreqStd)
	}
	return over, prec
}

// Fig7Point is one (fmax, H) cell of Figure 7.
type Fig7Point struct {
	FMax      float64
	HorizonS  float64
	AvgTimeMS float64
	Ops       int64
	FreqMean  float64
	FreqStd   float64
}

// Fig7Result reproduces Figure 7: transform cost and detection
// precision vs fmax at δf = 0.5 Hz.
type Fig7Result struct {
	Points []Fig7Point
	// StdGrowsWithFMax reports whether the average detection std at
	// fmax=400 exceeds the one at fmax=100 (the paper's observation).
	StdAt100, StdAt400 float64
}

// Fig7 sweeps fmax ∈ {100,200,300,400}Hz and H ∈ {0.5,1,1.5,2}s.
func Fig7(seed uint64, reps int) Fig7Result {
	if reps <= 0 {
		reps = 100
	}
	horizons := []simtime.Duration{500 * simtime.Millisecond, simtime.Second,
		1500 * simtime.Millisecond, 2 * simtime.Second}
	var res Fig7Result
	var n100, n400 int
	for _, fmax := range []float64{100, 200, 300, 400} {
		band := spectrum.Band{FMin: 1, FMax: fmax, DeltaF: 0.5}
		for _, h := range horizons {
			var freqs []float64
			var opsTotal int64
			var elapsed time.Duration
			for rep := 0; rep < reps; rep++ {
				events := mp3TraceFixed(seed+uint64(rep)*271, h)
				var s *spectrum.Spectrum
				elapsed += timeIt(1, func() { s = spectrum.Compute(events, band) })
				opsTotal += s.Ops
				if d := spectrum.Detect(s, spectrum.DefaultDetect); d.Periodic {
					freqs = append(freqs, d.Frequency)
				}
			}
			pt := Fig7Point{
				FMax:      fmax,
				HorizonS:  h.Seconds(),
				AvgTimeMS: float64(elapsed.Microseconds()) / float64(reps) / 1e3,
				Ops:       opsTotal / int64(reps),
				FreqMean:  stats.Mean(freqs),
				FreqStd:   stats.Std(freqs),
			}
			res.Points = append(res.Points, pt)
			switch fmax {
			case 100:
				res.StdAt100 += pt.FreqStd
				n100++
			case 400:
				res.StdAt400 += pt.FreqStd
				n400++
			}
		}
	}
	if n100 > 0 {
		res.StdAt100 /= float64(n100)
	}
	if n400 > 0 {
		res.StdAt400 /= float64(n400)
	}
	return res
}

// Series renders Figure 7 as two CSV series.
func (r Fig7Result) Series() (*report.Series, *report.Series) {
	over := report.NewSeries("Figure 7a: transform time (ms) vs fmax, deltaF=0.5Hz",
		"fmax_Hz", "H_s", "time_ms", "ops")
	prec := report.NewSeries("Figure 7b: detected frequency vs fmax, deltaF=0.5Hz",
		"fmax_Hz", "H_s", "freq_mean_Hz", "freq_std_Hz")
	for _, p := range r.Points {
		over.Add(p.FMax, p.HorizonS, p.AvgTimeMS, float64(p.Ops))
		prec.Add(p.FMax, p.HorizonS, p.FreqMean, p.FreqStd)
	}
	return over, prec
}

// Fig8Point is one (ε, H) cell of Figure 8.
type Fig8Point struct {
	Epsilon   float64
	HorizonS  float64
	Alpha     float64
	AvgTimeUS float64 // heuristic-only wall time
	Scanned   int64   // elements examined (Eq. 5)
}

// Fig8Result reproduces Figure 8: the peak-detection heuristic's cost
// vs ε, with (b) and without (a) the α threshold.
type Fig8Result struct {
	Points []Fig8Point
	// SpeedupFromAlpha is the mean ratio of α=0 cost to α=0.2 cost
	// (the paper's plots show roughly 3-4x).
	SpeedupFromAlpha float64
}

// Fig8 sweeps ε ∈ {0.1..1.0} and H ∈ {0.5,1,1.5,2}s for α ∈ {0, 0.2}.
func Fig8(seed uint64, reps int) Fig8Result {
	if reps <= 0 {
		reps = 100
	}
	horizons := []simtime.Duration{500 * simtime.Millisecond, simtime.Second,
		1500 * simtime.Millisecond, 2 * simtime.Second}
	var res Fig8Result
	var ratioSum float64
	var ratioN int
	for _, h := range horizons {
		// One spectrum per (H, rep); the heuristic is what is timed.
		specs := make([]*spectrum.Spectrum, 0, reps)
		for rep := 0; rep < reps; rep++ {
			events := mp3TraceFixed(seed+uint64(rep)*733, h)
			specs = append(specs, spectrum.Compute(events, spectrum.DefaultBand))
		}
		for eps := 0.1; eps <= 1.001; eps += 0.1 {
			var byAlpha [2]float64
			for ai, alpha := range []float64{0, 0.2} {
				cfg := spectrum.DetectConfig{Alpha: alpha, Epsilon: eps, KMax: 10}
				var scanned int64
				elapsed := timeIt(1, func() {
					for _, s := range specs {
						d := spectrum.Detect(s, cfg)
						scanned += d.Scanned
					}
				})
				avgUS := float64(elapsed.Nanoseconds()) / float64(reps) / 1e3
				res.Points = append(res.Points, Fig8Point{
					Epsilon:   eps,
					HorizonS:  h.Seconds(),
					Alpha:     alpha,
					AvgTimeUS: avgUS,
					Scanned:   scanned / int64(reps),
				})
				byAlpha[ai] = avgUS
			}
			if byAlpha[1] > 0 {
				ratioSum += byAlpha[0] / byAlpha[1]
				ratioN++
			}
		}
	}
	if ratioN > 0 {
		res.SpeedupFromAlpha = ratioSum / float64(ratioN)
	}
	return res
}

// Series renders Figure 8 as one CSV series.
func (r Fig8Result) Series() *report.Series {
	s := report.NewSeries("Figure 8: peak-detection time (us) vs epsilon",
		"epsilon_Hz", "H_s", "alpha", "time_us", "scanned")
	for _, p := range r.Points {
		s.Add(p.Epsilon, p.HorizonS, p.Alpha, p.AvgTimeUS, float64(p.Scanned))
	}
	return s
}

// Fig9Point is one (ε, H) cell of Figure 9.
type Fig9Point struct {
	Epsilon  float64
	HorizonS float64
	FreqMean float64
	FreqStd  float64
}

// Fig9Result reproduces Figure 9: detected-frequency statistics vs ε.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9 sweeps ε ∈ {0.1..1.0} and H ∈ {0.5,1,1.5,2}s at α = 0.2.
func Fig9(seed uint64, reps int) Fig9Result {
	if reps <= 0 {
		reps = 100
	}
	horizons := []simtime.Duration{500 * simtime.Millisecond, simtime.Second,
		1500 * simtime.Millisecond, 2 * simtime.Second}
	var res Fig9Result
	for _, h := range horizons {
		specs := make([]*spectrum.Spectrum, 0, reps)
		for rep := 0; rep < reps; rep++ {
			events := mp3TraceFixed(seed+uint64(rep)*947, h)
			specs = append(specs, spectrum.Compute(events, spectrum.DefaultBand))
		}
		for eps := 0.1; eps <= 1.001; eps += 0.1 {
			cfg := spectrum.DetectConfig{Alpha: 0.2, Epsilon: eps, KMax: 10}
			var freqs []float64
			for _, s := range specs {
				if d := spectrum.Detect(s, cfg); d.Periodic {
					freqs = append(freqs, d.Frequency)
				}
			}
			res.Points = append(res.Points, Fig9Point{
				Epsilon:  eps,
				HorizonS: h.Seconds(),
				FreqMean: stats.Mean(freqs),
				FreqStd:  stats.Std(freqs),
			})
		}
	}
	return res
}

// Series renders Figure 9 as one CSV series.
func (r Fig9Result) Series() *report.Series {
	s := report.NewSeries("Figure 9: detected frequency vs epsilon (alpha=0.2)",
		"epsilon_Hz", "H_s", "freq_mean_Hz", "freq_std_Hz")
	for _, p := range r.Points {
		s.Add(p.Epsilon, p.HorizonS, p.FreqMean, p.FreqStd)
	}
	return s
}

// Fig10Result reproduces Figure 10: the normalised amplitude spectrum
// of the mplayer trace at increasing tracing times.
type Fig10Result struct {
	Series *report.Series // freq_Hz then one column per tracing time
	// PeakSharpness maps tracing milliseconds to the ratio between the
	// fundamental's amplitude and the mean amplitude over the band:
	// the peaks sharpen as the tracing time grows (the paper:
	// "indisputable starting from 1s of tracing time").
	PeakSharpness map[int]float64
}

// Fig10 computes spectra for tracing times {0.2, 0.5, 1, 2, 4}s.
func Fig10(seed uint64) Fig10Result {
	times := []simtime.Duration{200 * simtime.Millisecond, 500 * simtime.Millisecond,
		simtime.Second, 2 * simtime.Second, 4 * simtime.Second}
	band := spectrum.Band{FMin: 25, FMax: 100, DeltaF: 0.1}
	series := report.NewSeries("Figure 10: normalised spectrum vs tracing time",
		"freq_Hz", "t200ms", "t500ms", "t1000ms", "t2000ms", "t4000ms")
	norms := make([][]float64, len(times))
	res := Fig10Result{PeakSharpness: make(map[int]float64)}
	for i, h := range times {
		events := mp3Trace(seed, h, noLoad)
		s := spectrum.Compute(events, band)
		norms[i] = s.Normalized()
		if mean := s.Mean(); mean > 0 {
			res.PeakSharpness[int(h.Milliseconds())] = s.Amp[band.Bin(32.5)] / mean
		}
	}
	for bin := 0; bin < band.Bins(); bin++ {
		series.Add(band.Freq(bin), norms[0][bin], norms[1][bin], norms[2][bin], norms[3][bin], norms[4][bin])
	}
	res.Series = series
	return res
}

// Fig11Result reproduces Figure 11: the PMF of the detected frequency
// at short vs long tracing times.
type Fig11Result struct {
	ShortPMF []stats.PMFBin // H = 200ms
	LongPMF  []stats.PMFBin // H = 2s
	// Fraction of detections within 1 Hz of the true 32.5 Hz.
	ShortHit, LongHit float64
	// Fraction of detections at the higher harmonics (>60 Hz).
	ShortHarmonic, LongHarmonic float64
}

// Fig11 repeats trace+detect `reps` times (the paper uses 100) at
// H = 200ms and H = 2s.
func Fig11(seed uint64, reps int) Fig11Result {
	if reps <= 0 {
		reps = 100
	}
	collect := func(h simtime.Duration) []float64 {
		var freqs []float64
		for rep := 0; rep < reps; rep++ {
			d, _ := detectOn(seed+uint64(rep)*389, h, spectrum.DefaultBand, spectrum.DefaultDetect)
			if d.Periodic {
				freqs = append(freqs, d.Frequency)
			}
		}
		return freqs
	}
	short := collect(200 * simtime.Millisecond)
	long := collect(2 * simtime.Second)
	frac := func(fs []float64, pred func(float64) bool) float64 {
		if len(fs) == 0 {
			return 0
		}
		n := 0
		for _, f := range fs {
			if pred(f) {
				n++
			}
		}
		return float64(n) / float64(len(fs))
	}
	near := func(f float64) bool { return f > 31.5 && f < 33.5 }
	harm := func(f float64) bool { return f > 60 }
	return Fig11Result{
		ShortPMF:      stats.PMF(short, 0.5),
		LongPMF:       stats.PMF(long, 0.5),
		ShortHit:      frac(short, near),
		LongHit:       frac(long, near),
		ShortHarmonic: frac(short, harm),
		LongHarmonic:  frac(long, harm),
	}
}

// Series renders both PMFs.
func (r Fig11Result) Series() (*report.Series, *report.Series) {
	s1 := report.NewSeries("Figure 11a: PMF of detected frequency, H=200ms", "freq_Hz", "mass")
	for _, b := range r.ShortPMF {
		s1.Add(b.Center, b.Mass)
	}
	s2 := report.NewSeries("Figure 11b: PMF of detected frequency, H=2s", "freq_Hz", "mass")
	for _, b := range r.LongPMF {
		s2.Add(b.Center, b.Mass)
	}
	return s1, s2
}
