package experiments

import (
	"fmt"

	"repro/internal/simtime"
	"repro/selftune"
)

// The NUMA contention experiment prices migrations for the first time:
// on a machine whose cores group into cache/NUMA nodes, a migration
// that crosses a node boundary forfeits cache warmth, so a balancing
// policy should spread load with as few node crossings as it can get
// away with. The scenario is a per-node consolidated boot — every
// node's first core holds all of that node's tenants (the state a
// node-local boot CPU or a suspend/resume leaves behind) — which a
// topology-blind policy de-consolidates by shipping tenants to
// whatever core is globally coldest, crossing nodes for no reason,
// while the topology-aware policy reaches the same spread almost
// entirely with intra-node moves.

// NUMAPolicyResult is one policy's half of the NUMA contention
// experiment.
type NUMAPolicyResult struct {
	Policy string

	SpreadStart float64
	SpreadEnd   float64

	// Migrations and CrossNode count the machine-level moves of the
	// recovery; CrossNodeFraction is their ratio (0 when nothing
	// moved).
	Migrations        int
	CrossNode         int
	CrossNodeFraction float64

	FramesDecoded  int
	DeadlineMisses int
}

// NUMAResult is the outcome of the NUMA contention experiment: the
// same per-node consolidated boot recovered by plain work-stealing
// (topology-blind) and by the topology-aware cost-based policy.
type NUMAResult struct {
	Cores        int
	Nodes        int
	CoresPerNode int
	Tenants      int

	Steal NUMAPolicyResult // BalanceWorkStealing: blind de-consolidation
	Topo  NUMAPolicyResult // BalanceTopologyAware: cost-based placement
}

// Table renders the result in the repo's report style.
func (r NUMAResult) Table() string {
	row := func(p NUMAPolicyResult) string {
		return fmt.Sprintf("%-15s spread %.3f -> %.3f | migrations %3d, cross-node %3d (%.0f%%) | frames %d, missed %d",
			p.Policy, p.SpreadStart, p.SpreadEnd, p.Migrations, p.CrossNode,
			p.CrossNodeFraction*100, p.FramesDecoded, p.DeadlineMisses)
	}
	return fmt.Sprintf(`== NUMA-aware balancing (%d cores = %d nodes x %d, %d tenants booted per-node consolidated) ==
%s
%s
`, r.Cores, r.Nodes, r.CoresPerNode, r.Tenants, row(r.Steal), row(r.Topo))
}

// NUMAContention runs the recovery scenario on nodes×coresPerNode
// cores (the headline configuration is 4×16) for the given horizon,
// once per policy, and reports how much of each policy's migration
// traffic crossed a node boundary.
func NUMAContention(seed uint64, nodes, coresPerNode int, horizon simtime.Duration) NUMAResult {
	if nodes < 2 {
		nodes = 4
	}
	if coresPerNode < 4 {
		coresPerNode = 16
	}
	if horizon <= 0 {
		horizon = 2 * simtime.Second
	}
	cores := nodes * coresPerNode
	perBoot := coresPerNode - 2
	res := NUMAResult{
		Cores: cores, Nodes: nodes, CoresPerNode: coresPerNode,
		Tenants: nodes * perBoot,
	}
	res.Steal = numaRecovery(seed, nodes, coresPerNode, horizon, selftune.BalanceWorkStealing())
	res.Topo = numaRecovery(seed, nodes, coresPerNode, horizon, selftune.BalanceTopologyAware())
	return res
}

// numaRecovery boots every node's tenants consolidated on the node's
// first core and lets the given policy spread them for the horizon.
func numaRecovery(seed uint64, nodes, coresPerNode int, horizon simtime.Duration, policy selftune.Balancer) NUMAPolicyResult {
	cores := nodes * coresPerNode
	sys, err := selftune.NewSystem(
		selftune.WithSeed(seed+1),
		selftune.WithCPUs(cores),
		selftune.WithTopology(selftune.UniformTopology(cores, coresPerNode)),
		selftune.WithBalancer(policy),
		selftune.WithBalanceInterval(100*simtime.Millisecond),
		selftune.WithBalanceThreshold(0.1))
	if err != nil {
		panic(err)
	}
	perBoot := coresPerNode - 2
	// The same lean bootstrap as the migration contention study: the
	// default generous initial budget times perBoot tuners would
	// saturate the boot core's admission before the load starts, so all
	// initial reservations together take at most half the core.
	leanCfg := selftune.DefaultTunerConfig()
	leanCfg.InitialBudget = 2 * simtime.Millisecond
	if cap := leanCfg.InitialPeriod / (2 * simtime.Duration(perBoot)); cap < leanCfg.InitialBudget {
		leanCfg.InitialBudget = cap
	}
	leanCfg.Sampling = 100 * simtime.Millisecond
	var tenants []*selftune.Handle
	for node := 0; node < nodes; node++ {
		boot := node * coresPerNode
		for i := 0; i < perBoot; i++ {
			h, err := sys.Spawn("video",
				selftune.SpawnName(fmt.Sprintf("n%dv%02d", node, i)),
				selftune.OnCore(boot),
				selftune.SpawnHint(0.9/float64(perBoot)),
				selftune.SpawnUtil(0.06),
				selftune.Tuned(leanCfg))
			if err != nil {
				panic(err)
			}
			h.Start(0)
			tenants = append(tenants, h)
		}
	}
	out := NUMAPolicyResult{Policy: policy.Name(), SpreadStart: loadSpread(sys)}
	sys.Run(horizon)
	out.SpreadEnd = loadSpread(sys)
	out.Migrations = sys.Machine().Migrations()
	out.CrossNode = sys.Machine().CrossNodeMigrations()
	if out.Migrations > 0 {
		out.CrossNodeFraction = float64(out.CrossNode) / float64(out.Migrations)
	}
	for _, h := range tenants {
		st := h.Player().Task().Stats()
		out.FramesDecoded += st.Completed
		out.DeadlineMisses += st.Missed
	}
	return out
}
