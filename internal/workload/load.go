package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// ReservedPeriodic is a synthetic periodic real-time application
// running in its own hard reservation — the paper's background-load
// generator ("a simple real-time periodic application", Sec. 5.3).
type ReservedPeriodic struct {
	Task    *sched.Task
	Server  *sched.Server
	lt      laneTimers
	stopped bool
}

// MoveLane implements LaneMover: re-arm the release loop on the
// destination lane. The load is untraced, so the sink is ignored.
func (rp *ReservedPeriodic) MoveLane(dst *sim.Engine, _ SyscallSink) {
	rp.lt.move(dst)
}

// Stop quiesces the release loop: the next scheduled release becomes a
// no-op. The reservation itself stays on the scheduler (detach it via
// migration or DetachAll to reclaim the bandwidth). Idempotent.
func (rp *ReservedPeriodic) Stop() { rp.stopped = true }

// StartReservedPeriodic creates a hard CBS (budget, period) and a
// periodic task inside it whose jobs demand demandFrac of the budget
// each period (with a little uniform jitter), starting at offset.
// Table 2's load rows use e.g. (645us, 4300us) for 15% CPU.
func StartReservedPeriodic(sd *sched.Scheduler, r *rng.Source, name string,
	budget, period simtime.Duration, demandFrac float64, offset simtime.Time) *ReservedPeriodic {

	if demandFrac <= 0 || demandFrac > 1 {
		panic(fmt.Sprintf("workload: demandFrac %v out of (0,1]", demandFrac))
	}
	srv := sd.NewServer(name, budget, period, sched.HardCBS)
	task := sd.NewTask(name)
	task.AttachTo(srv, 0)
	rp := &ReservedPeriodic{Task: task, Server: srv, lt: laneTimers{eng: sd.Engine()}}
	next := offset
	var release func()
	release = func() {
		if rp.stopped {
			return
		}
		now := rp.lt.now()
		d := float64(budget) * demandFrac * r.Uniform(0.95, 1.0)
		task.Release(sched.NewJob(now, simtime.Duration(d), now.Add(period)))
		next = next.Add(period)
		rp.lt.at(next, release)
	}
	rp.lt.at(next, release)
	return rp
}

// Reservation is a (budget, period) pair for one background task.
type Reservation struct {
	Budget simtime.Duration
	Period simtime.Duration
}

// Bandwidth returns Q/T.
func (r Reservation) Bandwidth() float64 {
	if r.Period <= 0 {
		return 0
	}
	return float64(r.Budget) / float64(r.Period)
}

// LoadSpec is one background-load configuration from Table 2: the
// total CPU utilisation and the set of reservations generating it.
type LoadSpec struct {
	Util         float64 // total fraction of the CPU
	Reservations []Reservation
}

// Table2Loads are the exact background reservations of the paper's
// Table 2 (budgets and periods in microseconds). Each row of the table
// *adds* the reservation in its second column to the previous row's
// set, each contributing 15% of the CPU.
var Table2Loads = []LoadSpec{
	{0.00, nil},
	{0.15, []Reservation{
		{645 * simtime.Microsecond, 4300 * simtime.Microsecond},
	}},
	{0.30, []Reservation{
		{645 * simtime.Microsecond, 4300 * simtime.Microsecond},
		{1200 * simtime.Microsecond, 8000 * simtime.Microsecond},
	}},
	{0.45, []Reservation{
		{645 * simtime.Microsecond, 4300 * simtime.Microsecond},
		{1200 * simtime.Microsecond, 8000 * simtime.Microsecond},
		{1650 * simtime.Microsecond, 11000 * simtime.Microsecond},
	}},
	{0.60, []Reservation{
		{645 * simtime.Microsecond, 4300 * simtime.Microsecond},
		{1200 * simtime.Microsecond, 8000 * simtime.Microsecond},
		{1650 * simtime.Microsecond, 11000 * simtime.Microsecond},
		{2250 * simtime.Microsecond, 15000 * simtime.Microsecond},
	}},
}

// StartLoad instantiates every reservation of a LoadSpec (no-op for
// the zero-load row) and returns the spawned applications.
func StartLoad(sd *sched.Scheduler, r *rng.Source, spec LoadSpec, name string) []*ReservedPeriodic {
	out := make([]*ReservedPeriodic, 0, len(spec.Reservations))
	for i, res := range spec.Reservations {
		offset := simtime.Time(r.Int63n(int64(res.Period)))
		out = append(out, StartReservedPeriodic(sd, r,
			fmt.Sprintf("%s%d", name, i), res.Budget, res.Period, 0.97, offset))
	}
	return out
}

// MakeLoad builds a background load of approximately util CPU
// utilisation out of n periodic reservations with distinct periods
// (used by Table 3, where the paper loads the system with "some
// periodic real-time tasks").
func MakeLoad(sd *sched.Scheduler, r *rng.Source, util float64, n int) []*ReservedPeriodic {
	return MakeLoadAt(sd, r, util, n, 0)
}

// MakeLoadAt is MakeLoad with every task's release offset shifted to
// start from base, so deferred-start callers can bring the load up
// mid-run.
func MakeLoadAt(sd *sched.Scheduler, r *rng.Source, util float64, n int, base simtime.Time) []*ReservedPeriodic {
	if util <= 0 {
		return nil
	}
	if n <= 0 {
		n = 1
	}
	periods := []simtime.Duration{
		4300 * simtime.Microsecond,
		8000 * simtime.Microsecond,
		11000 * simtime.Microsecond,
		15000 * simtime.Microsecond,
		21000 * simtime.Microsecond,
	}
	out := make([]*ReservedPeriodic, 0, n)
	share := util / float64(n)
	for i := 0; i < n; i++ {
		p := periods[i%len(periods)]
		q := simtime.Duration(share * float64(p))
		if q < simtime.Microsecond {
			q = simtime.Microsecond
		}
		offset := base.Add(simtime.Duration(r.Int63n(int64(p))))
		out = append(out, StartReservedPeriodic(sd, r, fmt.Sprintf("rtload%d", i), q, p, 0.97, offset))
	}
	return out
}

// Background is a deferred MakeLoad: the reservations are created only
// when Start fires, so a background load can sit behind the same
// create-then-start contract as the application models.
type Background struct {
	name    string
	sd      *sched.Scheduler
	r       *rng.Source
	util    float64
	n       int
	started bool
	apps    []*ReservedPeriodic
}

// MoveLane implements LaneMover: forward the move to every spawned
// reserved periodic task (a no-op before Start — the reservations are
// created on whatever lane the scheduler then lives on).
func (b *Background) MoveLane(dst *sim.Engine, sink SyscallSink) {
	for _, a := range b.apps {
		a.MoveLane(dst, sink)
	}
}

// NewBackground prepares a background load of approximately util CPU
// utilisation split across n reserved periodic tasks.
func NewBackground(sd *sched.Scheduler, r *rng.Source, name string, util float64, n int) *Background {
	return &Background{name: name, sd: sd, r: r, util: util, n: n}
}

// Name returns the load's configured name.
func (b *Background) Name() string { return b.name }

// Start creates the reservations with release offsets from at
// (clamped to the present, so a mid-run start of a deferred load
// cannot schedule into the past).
func (b *Background) Start(at simtime.Time) {
	if b.started {
		panic("workload: Background started twice")
	}
	b.started = true
	if now := b.sd.Engine().Now(); at < now {
		at = now
	}
	b.apps = MakeLoadAt(b.sd, b.r, b.util, b.n, at)
}

// Stop quiesces every reserved periodic task of the load: release
// loops become no-ops at their next firing. The reservations stay on
// the scheduler until detached. Idempotent; a no-op before Start.
func (b *Background) Stop() {
	for _, a := range b.apps {
		a.Stop()
	}
}

// Apps returns the spawned reserved periodic tasks (nil before Start).
func (b *Background) Apps() []*ReservedPeriodic { return b.apps }

// Servers returns the load's CBS servers (nil before Start) — the set
// a migration must carry together, since the load is one application.
func (b *Background) Servers() []*sched.Server {
	if len(b.apps) == 0 {
		return nil
	}
	out := make([]*sched.Server, len(b.apps))
	for i, a := range b.apps {
		out[i] = a.Server
	}
	return out
}

// StartCPUHog creates a best-effort task with a single effectively
// infinite job, useful to keep the CPU saturated in tests.
func StartCPUHog(sd *sched.Scheduler, name string, work simtime.Duration) *sched.Task {
	t := sd.NewTask(name)
	sd.Engine().At(sd.Engine().Now(), func() {
		t.Release(sched.NewJob(0, work, simtime.Never))
	})
	return t
}

// Noise is a best-effort task receiving jobs with exponential
// inter-arrival times and exponential demand: unstructured background
// activity that exercises the aperiodicity path of the period
// analyser. The task exists from construction (so PID filters can be
// installed), but no jobs arrive until Start.
type Noise struct {
	name             string
	sd               *sched.Scheduler
	r                *rng.Source
	lt               laneTimers
	meanInterarrival simtime.Duration
	meanDemand       simtime.Duration
	sink             SyscallSink
	task             *sched.Task
	started          bool
	stopped          bool
}

// MoveLane implements LaneMover: re-arm the arrival process on the
// destination lane and emit future syscalls into its tracer.
func (n *Noise) MoveLane(dst *sim.Engine, sink SyscallSink) {
	n.lt.move(dst)
	if sink != nil && n.sink != nil {
		n.sink = sink
	}
}

// NewNoise prepares a Poisson noise source.
func NewNoise(sd *sched.Scheduler, r *rng.Source, name string,
	meanInterarrival, meanDemand simtime.Duration, sink SyscallSink) *Noise {

	return &Noise{
		name: name, sd: sd, r: r,
		lt:               laneTimers{eng: sd.Engine()},
		meanInterarrival: meanInterarrival,
		meanDemand:       meanDemand,
		sink:             sink,
		task:             sd.NewTask(name),
	}
}

// Name returns the noise source's configured name.
func (n *Noise) Name() string { return n.name }

// Task returns the underlying scheduler task.
func (n *Noise) Task() *sched.Task { return n.task }

// Start begins the arrival process at the given instant.
func (n *Noise) Start(at simtime.Time) {
	if n.started {
		panic("workload: Noise started twice")
	}
	n.started = true
	t := n.task
	var arrive func()
	arrive = func() {
		if n.stopped {
			return
		}
		d := simtime.Duration(n.r.Exp(float64(n.meanDemand)))
		if d < simtime.Microsecond {
			d = simtime.Microsecond
		}
		j := sched.NewJob(n.lt.now(), d, simtime.Never)
		if n.sink != nil {
			pid := t.PID()
			j.AddHook(d, func(now simtime.Time) {
				if ov := n.sink.Syscall(now, pid, int(SysRead)); ov > 0 {
					j.ExtendDemand(ov)
				}
			})
		}
		t.Release(j)
		gap := simtime.Duration(n.r.Exp(float64(n.meanInterarrival)))
		if gap < simtime.Microsecond {
			gap = simtime.Microsecond
		}
		n.lt.after(gap, arrive)
	}
	if at < n.lt.now() {
		at = n.lt.now()
	}
	n.lt.at(at, arrive)
}

// Stop quiesces the arrival process: the next scheduled arrival
// becomes a no-op. Idempotent; safe before Start.
func (n *Noise) Stop() { n.stopped = true }

// StartPoissonNoise creates a Poisson noise source whose arrivals
// begin immediately.
func StartPoissonNoise(sd *sched.Scheduler, r *rng.Source, name string,
	meanInterarrival, meanDemand simtime.Duration, sink SyscallSink) *sched.Task {

	n := NewNoise(sd, r, name, meanInterarrival, meanDemand, sink)
	n.Start(sd.Engine().Now())
	return n.Task()
}
