package workload

import (
	"repro/internal/sched"
	"repro/internal/simtime"
)

// Request is one completed unit of request-shaped work: a webserver
// request, a game-loop frame, a VM demand slice or a transcode unit.
// Workload kinds with natural request boundaries publish one Request
// per completed job through their config's OnRequest observer, turning
// the scheduler's per-job completion record into the latency signal
// the telemetry layer aggregates into histograms and SLOs.
type Request struct {
	// At is the completion instant.
	At simtime.Time
	// Latency is the completion latency: finish minus release.
	Latency simtime.Duration
	// Deadline is the request's relative deadline (the workload's
	// configured response bound), or 0 when the job ran without one.
	Deadline simtime.Duration
	// Missed reports whether the request finished after its deadline.
	Missed bool
}

// Tardiness returns how far past its deadline the request finished,
// or 0 for on-time and deadline-free requests.
func (r Request) Tardiness() simtime.Duration {
	if !r.Missed || r.Latency <= r.Deadline {
		return 0
	}
	return r.Latency - r.Deadline
}

// RequestObserver receives completed requests. Observers run inside
// the simulation at the completion instant and must not block.
type RequestObserver func(Request)

// observeCompletion adapts a RequestObserver into a sched
// job-completion hook: latency is the job's response time, deadline
// the relative deadline the workload configured (0 when jobs run
// without one).
func observeCompletion(obs RequestObserver, deadline simtime.Duration) func(j *sched.Job, now simtime.Time) {
	return func(j *sched.Job, now simtime.Time) {
		obs(Request{
			At:       now,
			Latency:  j.ResponseTime(),
			Deadline: deadline,
			Missed:   j.Missed(now),
		})
	}
}
