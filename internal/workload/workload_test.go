package workload_test

import (
	"math"
	"testing"

	"repro/internal/ktrace"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/workload"
)

const ms = simtime.Millisecond

func newSim() (*sim.Engine, *sched.Scheduler) {
	eng := sim.New()
	return eng, sched.New(sched.Config{Engine: eng})
}

func TestPlayerSteadyIFTUnderGenerousReservation(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(1)
	cfg := workload.VideoPlayerConfig("mplayer", 0.25)
	p := workload.NewPlayer(sd, r, cfg)
	srv := sd.NewServer("res", 30*ms, 40*ms, sched.HardCBS)
	p.Task().AttachTo(srv, 0)
	p.Start(0)
	eng.RunUntil(simtime.Time(20 * simtime.Second))

	ift := p.InterFrameTimes()
	if len(ift) < 400 {
		t.Fatalf("only %d inter-frame samples", len(ift))
	}
	var sum float64
	for _, d := range ift {
		sum += d.Milliseconds()
	}
	mean := sum / float64(len(ift))
	if math.Abs(mean-40) > 1.0 {
		t.Errorf("mean IFT = %.2fms, want ~40ms", mean)
	}
}

func TestPlayerDemandStatistics(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(2)
	cfg := workload.VideoPlayerConfig("mplayer", 0.25)
	p := workload.NewPlayer(sd, r, cfg)
	srv := sd.NewServer("res", 38*ms, 40*ms, sched.HardCBS)
	p.Task().AttachTo(srv, 0)
	p.Start(0)
	eng.RunUntil(simtime.Time(60 * simtime.Second))

	demands := p.Demands()
	if len(demands) < 1000 {
		t.Fatalf("only %d frames", len(demands))
	}
	var sum float64
	for _, d := range demands {
		sum += float64(d)
	}
	mean := sum / float64(len(demands))
	want := float64(cfg.MeanDemand)
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("mean demand %.2fms, want ~%.2fms", mean/1e6, want/1e6)
	}
	// GOP structure: I frames (every 12th) must be the most expensive
	// on average.
	var iSum, bSum float64
	var iN, bN int
	for k, d := range demands {
		switch {
		case k%12 == 0:
			iSum += float64(d)
			iN++
		case k%3 != 0:
			bSum += float64(d)
			bN++
		}
	}
	if iN == 0 || bN == 0 {
		t.Fatal("no frames classified")
	}
	if iSum/float64(iN) < 2*bSum/float64(bN) {
		t.Errorf("I frames (%.2fms avg) not markedly heavier than B frames (%.2fms avg)",
			iSum/float64(iN)/1e6, bSum/float64(bN)/1e6)
	}
}

func TestPlayerEmitsBurstySyscalls(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(3)
	buf := ktrace.NewBuffer(ktrace.QTrace, 1<<16)
	cfg := workload.MP3PlayerConfig("mp3")
	cfg.Sink = buf
	p := workload.NewPlayer(sd, r, cfg)
	p.Start(0) // best effort; system otherwise idle
	eng.RunUntil(simtime.Time(2 * simtime.Second))

	events := buf.Drain()
	if len(events) == 0 {
		t.Fatal("no syscalls recorded")
	}
	// Expected count: per frame between Start+End mins and maxes (+1
	// nanosleep, + up to MidCallsMax).
	frames := p.Task().Stats().Completed
	minPer := cfg.StartBurstMin + cfg.EndBurstMin + 1
	maxPer := cfg.StartBurstMax + cfg.EndBurstMax + cfg.MidCallsMax + 1
	if n := len(events); n < frames*minPer || n > (frames+1)*maxPer {
		t.Errorf("recorded %d events over %d frames, want within [%d,%d] per frame",
			n, frames, minPer, maxPer)
	}
	// Burstiness: the fraction of events within the first and last 10%
	// of each period should dominate.
	period := float64(cfg.Period)
	inBurst := 0
	for _, e := range events {
		phase := math.Mod(float64(e.At), period) / period
		if phase < 0.25 || phase > 0.75 {
			inBurst++
		}
	}
	if frac := float64(inBurst) / float64(len(events)); frac < 0.7 {
		t.Errorf("only %.0f%% of events near period boundaries; model not bursty", frac*100)
	}
	// The mix must be ioctl-dominated (Figure 4).
	hist := make(map[int]int)
	for _, e := range events {
		hist[e.Nr]++
	}
	if hist[int(workload.SysIoctl)] < len(events)/3 {
		t.Errorf("ioctl count %d of %d; mix should be ioctl-dominated", hist[int(workload.SysIoctl)], len(events))
	}
}

func TestPlayerNoSinkNoHooks(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(4)
	cfg := workload.MP3PlayerConfig("mp3")
	p := workload.NewPlayer(sd, r, cfg)
	p.Start(0)
	eng.RunUntil(simtime.Time(simtime.Second))
	if p.Task().Stats().Completed == 0 {
		t.Error("player without sink made no progress")
	}
}

func TestGOPWeightsAverageToOne(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(5)
	cfg := workload.VideoPlayerConfig("v", 0.2)
	cfg.DemandJitter = 0 // isolate the GOP structure
	p := workload.NewPlayer(sd, r, cfg)
	srv := sd.NewServer("res", 38*ms, 40*ms, sched.HardCBS)
	p.Task().AttachTo(srv, 0)
	p.Start(0)
	eng.RunUntil(simtime.Time(10 * simtime.Second))
	demands := p.Demands()
	if len(demands) < cfg.GOP {
		t.Fatalf("need at least one GOP, got %d frames", len(demands))
	}
	var sum float64
	full := (len(demands) / cfg.GOP) * cfg.GOP
	for _, d := range demands[:full] {
		sum += float64(d)
	}
	mean := sum / float64(full)
	if math.Abs(mean-float64(cfg.MeanDemand))/float64(cfg.MeanDemand) > 1e-6 {
		t.Errorf("GOP mean %.3fms, want exactly %.3fms", mean/1e6, float64(cfg.MeanDemand)/1e6)
	}
}

func TestTranscoderBaselineDuration(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(6)
	cfg := workload.DefaultTranscoderConfig("ffmpeg")
	cfg.WorkJitter = 0
	tr := workload.NewTranscoder(sd, r, cfg)
	tr.Start(0)
	eng.RunUntil(simtime.Time(60 * simtime.Second))
	finish, ok := tr.Finished()
	if !ok {
		t.Fatal("transcode never finished")
	}
	if finish != simtime.Time(cfg.TotalWork) {
		t.Errorf("finished at %v, want %v (idle system, no tracer)", finish, cfg.TotalWork)
	}
}

func TestTranscoderTracerOverheadOrdering(t *testing.T) {
	run := func(kind ktrace.Kind) simtime.Time {
		eng, sd := newSim()
		r := rng.New(7)
		cfg := workload.DefaultTranscoderConfig("ffmpeg")
		cfg.WorkJitter = 0
		buf := ktrace.NewBuffer(kind, 1<<20)
		cfg.Sink = buf
		tr := workload.NewTranscoder(sd, r, cfg)
		tr.Start(0)
		eng.RunUntil(simtime.Time(120 * simtime.Second))
		finish, ok := tr.Finished()
		if !ok {
			t.Fatalf("%v: transcode never finished", kind)
		}
		return finish
	}
	no := run(ktrace.NoTrace)
	qt := run(ktrace.QTrace)
	qos := run(ktrace.QOSTrace)
	st := run(ktrace.STrace)
	if !(no < qt && qt < qos && qos < st) {
		t.Errorf("overhead ordering violated: %v %v %v %v", no, qt, qos, st)
	}
	// Relative overhead magnitudes should be in the paper's ballpark.
	rel := func(x simtime.Time) float64 { return float64(x-no) / float64(no) * 100 }
	if r := rel(qt); r < 0.2 || r > 1.5 {
		t.Errorf("QTRACE overhead %.2f%%, want ~0.63%%", r)
	}
	if r := rel(st); r < 3.5 || r > 8 {
		t.Errorf("STRACE overhead %.2f%%, want ~5.5%%", r)
	}
}

func TestReservedPeriodicMeetsDeadlines(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(8)
	rp := workload.StartReservedPeriodic(sd, r, "rt", 645*simtime.Microsecond, 4300*simtime.Microsecond, 0.97, 0)
	eng.RunUntil(simtime.Time(5 * simtime.Second))
	st := rp.Task.Stats()
	if st.Completed < 1000 {
		t.Fatalf("completed %d jobs", st.Completed)
	}
	if st.Missed != 0 {
		t.Errorf("missed %d deadlines", st.Missed)
	}
	util := float64(st.Consumed) / float64(5*simtime.Second)
	if util < 0.12 || util > 0.15 {
		t.Errorf("utilisation %.3f, want ~0.135-0.15", util)
	}
}

func TestMakeLoadTotalsRequestedUtil(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(9)
	workload.MakeLoad(sd, r, 0.45, 3)
	if got := sd.TotalReservedBandwidth(); math.Abs(got-0.45) > 0.01 {
		t.Errorf("reserved bandwidth %.3f, want 0.45", got)
	}
	eng.RunUntil(simtime.Time(2 * simtime.Second))
	u := sd.Utilization()
	if u < 0.38 || u > 0.46 {
		t.Errorf("achieved utilisation %.3f, want just under 0.45", u)
	}
}

func TestStartLoadZeroUtilIsNoop(t *testing.T) {
	_, sd := newSim()
	r := rng.New(10)
	if got := workload.StartLoad(sd, r, workload.LoadSpec{}, "x"); len(got) != 0 {
		t.Errorf("zero load spawned %d tasks", len(got))
	}
}

func TestTable2LoadSpecsMatchUtil(t *testing.T) {
	for _, spec := range workload.Table2Loads {
		var got float64
		for _, res := range spec.Reservations {
			got += res.Bandwidth()
		}
		if math.Abs(got-spec.Util) > 0.001 {
			t.Errorf("spec util %.2f: sum Q/T = %.4f", spec.Util, got)
		}
	}
	// Rows must be cumulative supersets.
	for i := 1; i < len(workload.Table2Loads); i++ {
		prev, cur := workload.Table2Loads[i-1], workload.Table2Loads[i]
		if len(cur.Reservations) != len(prev.Reservations)+1 {
			t.Errorf("row %d does not add exactly one reservation", i)
		}
	}
}

func TestStartLoadSpawnsAllReservations(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(12)
	spec := workload.Table2Loads[4] // 60%
	apps := workload.StartLoad(sd, r, spec, "bg")
	if len(apps) != 4 {
		t.Fatalf("spawned %d apps, want 4", len(apps))
	}
	if got := sd.TotalReservedBandwidth(); math.Abs(got-0.60) > 0.01 {
		t.Errorf("reserved %.3f, want 0.60", got)
	}
	eng.RunUntil(simtime.Time(2 * simtime.Second))
	for _, a := range apps {
		if a.Task.Stats().Missed != 0 {
			t.Errorf("load task %v missed deadlines", a.Task)
		}
	}
}

func TestPoissonNoiseRuns(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(11)
	buf := ktrace.NewBuffer(ktrace.QTrace, 1<<12)
	task := workload.StartPoissonNoise(sd, r, "noise", 20*ms, 2*ms, buf)
	eng.RunUntil(simtime.Time(5 * simtime.Second))
	if task.Stats().Completed < 100 {
		t.Errorf("noise completed only %d jobs", task.Stats().Completed)
	}
	if buf.Recorded() == 0 {
		t.Error("noise emitted no syscalls")
	}
}

func TestCPUHog(t *testing.T) {
	eng, sd := newSim()
	hog := workload.StartCPUHog(sd, "hog", simtime.Duration(10*simtime.Second))
	eng.RunUntil(simtime.Time(simtime.Second))
	if got := hog.Stats().Consumed; got != simtime.Duration(simtime.Second) {
		t.Errorf("hog consumed %v of an idle second", got)
	}
}

func TestSyscallNames(t *testing.T) {
	if workload.SysIoctl.String() != "ioctl" {
		t.Error("SysIoctl name wrong")
	}
	if workload.Syscall(999).String() != "syscall?" {
		t.Error("unknown syscall name wrong")
	}
	if workload.NumSyscalls < 10 {
		t.Error("suspiciously few syscalls defined")
	}
}

func TestWebServerBurstyArrivals(t *testing.T) {
	eng, sd := newSim()
	buf := ktrace.NewBuffer(ktrace.QTrace, 1<<16)
	cfg := workload.DefaultWebServerConfig("web")
	cfg.Sink = buf
	ws := workload.NewWebServer(sd, rng.New(4), cfg)
	// A generous reservation so service time, not starvation, shapes
	// the stats.
	srv := sd.NewServer("res", 30*ms, 40*ms, sched.HardCBS)
	ws.Task().AttachTo(srv, 0)
	ws.Start(0)
	eng.RunUntil(simtime.Time(20 * simtime.Second))

	if ws.Bursts() < 500 {
		t.Fatalf("only %d bursts in 20s at ~20ms mean think time", ws.Bursts())
	}
	if ws.Served() <= ws.Bursts() {
		t.Errorf("served %d requests over %d bursts: burst factor has no effect",
			ws.Served(), ws.Bursts())
	}
	// Mean burst size should be near the configured factor of 4.
	mean := float64(ws.Served()) / float64(ws.Bursts())
	if mean < 2.5 || mean > 6 {
		t.Errorf("mean burst size %.2f, want ~%d", mean, cfg.Burst)
	}
	if got := ws.Task().Stats().Completed; got < ws.Served()*9/10 {
		t.Errorf("completed %d of %d requests under a generous reservation", got, ws.Served())
	}
	// Two syscalls per completed request (accept read, response write).
	if events := len(buf.Drain()); events < ws.Task().Stats().Completed {
		t.Errorf("%d traced syscalls for %d completed requests", events, ws.Task().Stats().Completed)
	}
}

func TestWebServerDeterminism(t *testing.T) {
	run := func() (int, int, simtime.Duration) {
		eng, sd := newSim()
		ws := workload.NewWebServer(sd, rng.New(9), workload.DefaultWebServerConfig("web"))
		srv := sd.NewServer("res", 20*ms, 40*ms, sched.HardCBS)
		ws.Task().AttachTo(srv, 0)
		ws.Start(0)
		eng.RunUntil(simtime.Time(5 * simtime.Second))
		return ws.Served(), ws.Bursts(), ws.Task().Stats().Consumed
	}
	s1, b1, c1 := run()
	s2, b2, c2 := run()
	if s1 != s2 || b1 != b2 || c1 != c2 {
		t.Errorf("same seed diverged: (%d,%d,%v) vs (%d,%d,%v)", s1, b1, c1, s2, b2, c2)
	}
}

func TestWebServerUtilisationScalesWithService(t *testing.T) {
	consumed := func(service simtime.Duration) float64 {
		eng, sd := newSim()
		cfg := workload.DefaultWebServerConfig("web")
		cfg.MeanService = service
		ws := workload.NewWebServer(sd, rng.New(7), cfg)
		srv := sd.NewServer("res", 38*ms, 40*ms, sched.HardCBS)
		ws.Task().AttachTo(srv, 0)
		ws.Start(0)
		horizon := 30 * simtime.Second
		eng.RunUntil(simtime.Time(horizon))
		return float64(ws.Task().Stats().Consumed) / float64(horizon)
	}
	lo := consumed(500 * simtime.Microsecond)
	hi := consumed(3 * ms)
	// util ≈ Burst * MeanService / MeanThink = 4*service/20ms.
	if math.Abs(lo-0.10) > 0.04 {
		t.Errorf("light traffic consumed %.3f of the CPU, want ~0.10", lo)
	}
	if math.Abs(hi-0.60) > 0.15 {
		t.Errorf("heavy traffic consumed %.3f of the CPU, want ~0.60", hi)
	}
}
