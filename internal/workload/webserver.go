package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// WebServerConfig parameterises a bursty request server.
type WebServerConfig struct {
	// Name identifies the instance (task name, reports).
	Name string
	// MeanThink is the mean think time between arrival bursts
	// (exponentially distributed).
	MeanThink simtime.Duration
	// Burst is the mean number of requests released back-to-back per
	// burst (geometrically distributed, at least one).
	Burst int
	// MeanService is the mean per-request service demand
	// (exponentially distributed).
	MeanService simtime.Duration
	// Deadline is the per-request response deadline, measured from the
	// request's arrival; missed responses show up in Task().Stats().
	Deadline simtime.Duration
	// Sink receives the request/response system calls (nil: untraced).
	Sink SyscallSink
	// OnRequest receives one Request per completed response (nil:
	// unobserved).
	OnRequest RequestObserver
}

// DefaultWebServerConfig returns a heavy-traffic configuration: bursts
// of ~4 requests every ~20ms, 100ms response deadline. At the default
// 1.5ms mean service demand this is ~30% of a core on average, with
// burst peaks far above it.
func DefaultWebServerConfig(name string) WebServerConfig {
	return WebServerConfig{
		Name:        name,
		MeanThink:   20 * simtime.Millisecond,
		Burst:       4,
		MeanService: 1500 * simtime.Microsecond,
		Deadline:    100 * simtime.Millisecond,
	}
}

// WebServer is a bursty-arrival request server: exponentially
// distributed think times separate bursts of back-to-back requests,
// each an exponentially sized job on one schedulable task. The model
// for web-style heavy traffic — long idle gaps, then a queue of work —
// that gives the telemetry pipeline something spikier to chart than
// the periodic players.
type WebServer struct {
	cfg     WebServerConfig
	sd      *sched.Scheduler
	r       *rng.Source
	lt      laneTimers
	task    *sched.Task
	served  int
	bursts  int
	started bool
	stopped bool
}

// MoveLane implements LaneMover: re-arm the burst loop on the
// destination lane and emit future syscalls into its tracer.
func (s *WebServer) MoveLane(dst *sim.Engine, sink SyscallSink) {
	s.lt.move(dst)
	if sink != nil {
		s.cfg.Sink = sink
	}
}

// NewWebServer prepares a web server. The task exists from
// construction (so PID filters can be installed); no requests arrive
// until Start.
func NewWebServer(sd *sched.Scheduler, r *rng.Source, cfg WebServerConfig) *WebServer {
	if cfg.MeanThink <= 0 {
		panic(fmt.Sprintf("workload: webserver %q: mean think time %v must be positive", cfg.Name, cfg.MeanThink))
	}
	if cfg.Burst < 1 {
		panic(fmt.Sprintf("workload: webserver %q: burst factor %d must be at least 1", cfg.Name, cfg.Burst))
	}
	if cfg.MeanService <= 0 {
		panic(fmt.Sprintf("workload: webserver %q: mean service demand %v must be positive", cfg.Name, cfg.MeanService))
	}
	s := &WebServer{cfg: cfg, sd: sd, r: r, lt: laneTimers{eng: sd.Engine()}, task: sd.NewTask(cfg.Name)}
	if cfg.OnRequest != nil {
		s.task.OnJobComplete = observeCompletion(cfg.OnRequest, cfg.Deadline)
	}
	return s
}

// Name returns the server's configured name.
func (s *WebServer) Name() string { return s.cfg.Name }

// Task returns the underlying scheduler task (the unit an AutoTuner
// manages).
func (s *WebServer) Task() *sched.Task { return s.task }

// Served returns the number of requests released so far.
func (s *WebServer) Served() int { return s.served }

// Bursts returns the number of arrival bursts so far.
func (s *WebServer) Bursts() int { return s.bursts }

// Start begins the arrival process at the given instant.
func (s *WebServer) Start(at simtime.Time) {
	if s.started {
		panic("workload: WebServer started twice")
	}
	s.started = true
	var burst func()
	burst = func() {
		if s.stopped {
			return
		}
		s.bursts++
		// Geometric burst size with the configured mean: each extra
		// request follows with probability 1 - 1/Burst.
		n := 1
		for p := 1 - 1/float64(s.cfg.Burst); s.r.Bool(p) && n < 64*s.cfg.Burst; n++ {
		}
		now := s.lt.now()
		for i := 0; i < n; i++ {
			s.release(now)
		}
		gap := simtime.Duration(s.r.Exp(float64(s.cfg.MeanThink)))
		if gap < simtime.Microsecond {
			gap = simtime.Microsecond
		}
		s.lt.after(gap, burst)
	}
	if at < s.lt.now() {
		at = s.lt.now()
	}
	s.lt.at(at, burst)
}

// Stop quiesces the arrival process: the next scheduled burst becomes
// a no-op. Requests already queued on the task are unaffected.
// Idempotent; safe before Start.
func (s *WebServer) Stop() { s.stopped = true }

// release queues one request: an exponentially sized job with a
// response deadline, emitting a read() on accept and a write() when
// the response goes out — the burst structure the period analyser and
// the tracer see.
func (s *WebServer) release(now simtime.Time) {
	s.served++
	d := simtime.Duration(s.r.Exp(float64(s.cfg.MeanService)))
	if d < simtime.Microsecond {
		d = simtime.Microsecond
	}
	dl := simtime.Never
	if s.cfg.Deadline > 0 {
		dl = now.Add(s.cfg.Deadline)
	}
	j := sched.NewJob(now, d, dl)
	if s.cfg.Sink != nil {
		pid := s.task.PID()
		j.AddHook(0, func(at simtime.Time) {
			if ov := s.cfg.Sink.Syscall(at, pid, int(SysRead)); ov > 0 {
				j.ExtendDemand(ov)
			}
		})
		j.AddHook(d, func(at simtime.Time) {
			if ov := s.cfg.Sink.Syscall(at, pid, int(SysWrite)); ov > 0 {
				j.ExtendDemand(ov)
			}
		})
	}
	s.task.Release(j)
}
