package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// VMBootPhase is one stage of a virtual machine's boot sequence: for
// Len of simulated time, the per-period demand is Mult times the
// steady-state demand.
type VMBootPhase struct {
	// Name labels the phase ("firmware", "kernel", ...).
	Name string
	// Mult scales the steady-state demand while the phase lasts.
	Mult float64
	// Len is the phase duration.
	Len simtime.Duration
}

// VMBootConfig parameterises a booting virtual machine.
type VMBootConfig struct {
	// Name identifies the instance (task name, reports).
	Name string
	// Period is the demand-slice period: the VM's virtual CPU is
	// modelled as a periodic task releasing one job per period.
	Period simtime.Duration
	// SteadyDemand is the mean per-period demand once boot completes.
	SteadyDemand simtime.Duration
	// Jitter is the relative standard deviation of the multiplicative
	// noise on each slice's demand.
	Jitter float64
	// Phases is the boot sequence, walked once from Start; afterwards
	// the VM runs at SteadyDemand indefinitely. Per-slice demand is
	// capped at Period — a VM cannot use more than one core.
	Phases []VMBootPhase
	// Sink receives the VM's I/O syscalls (nil: untraced).
	Sink SyscallSink
	// OnRequest receives one Request per completed demand slice (nil:
	// unobserved). The slice deadline is the period, so a VM falling
	// behind its virtual-CPU clock shows up as deadline misses.
	OnRequest RequestObserver
}

// DefaultVMBootConfig returns the canonical boot profile: 10ms demand
// slices walking firmware (dim), kernel (a saturating burst of device
// probing and decompression) and service-startup phases over the first
// ~1.2s, then steady state at the given mean utilisation.
func DefaultVMBootConfig(name string, steadyUtil float64) VMBootConfig {
	period := 10 * simtime.Millisecond
	return VMBootConfig{
		Name:         name,
		Period:       period,
		SteadyDemand: simtime.Duration(steadyUtil * float64(period)),
		Jitter:       0.15,
		Phases: []VMBootPhase{
			{Name: "firmware", Mult: 0.4, Len: 200 * simtime.Millisecond},
			{Name: "kernel", Mult: 2.2, Len: 400 * simtime.Millisecond},
			{Name: "services", Mult: 1.5, Len: 600 * simtime.Millisecond},
		},
	}
}

// VMBoot models a virtual machine booting and then serving: a periodic
// task whose per-period demand follows a staged ramp — low while
// firmware runs, a burst while the kernel initialises, elevated while
// services start — and settles at a steady state. The heavyweight
// tenant of the cluster scenarios: a realm scaling out sees a boot
// storm before the new capacity earns its keep.
type VMBoot struct {
	cfg     VMBootConfig
	sd      *sched.Scheduler
	r       *rng.Source
	lt      laneTimers
	task    *sched.Task
	base    simtime.Time
	slices  int
	started bool
	stopped bool
}

// MoveLane implements LaneMover: re-arm the slice grid on the
// destination lane and emit future syscalls into its tracer.
func (v *VMBoot) MoveLane(dst *sim.Engine, sink SyscallSink) {
	v.lt.move(dst)
	if sink != nil {
		v.cfg.Sink = sink
	}
}

// NewVMBoot prepares a VM. The task exists from construction (so PID
// filters can be installed); the boot sequence begins at Start.
func NewVMBoot(sd *sched.Scheduler, r *rng.Source, cfg VMBootConfig) *VMBoot {
	if cfg.Period <= 0 {
		panic(fmt.Sprintf("workload: vmboot %q: period %v must be positive", cfg.Name, cfg.Period))
	}
	if cfg.SteadyDemand <= 0 {
		panic(fmt.Sprintf("workload: vmboot %q: steady demand %v must be positive", cfg.Name, cfg.SteadyDemand))
	}
	for _, ph := range cfg.Phases {
		if ph.Mult <= 0 || ph.Len <= 0 {
			panic(fmt.Sprintf("workload: vmboot %q: phase %q needs positive multiplier and length", cfg.Name, ph.Name))
		}
	}
	v := &VMBoot{cfg: cfg, sd: sd, r: r, lt: laneTimers{eng: sd.Engine()}, task: sd.NewTask(cfg.Name)}
	if cfg.OnRequest != nil {
		v.task.OnJobComplete = observeCompletion(cfg.OnRequest, cfg.Period)
	}
	return v
}

// Name returns the VM's configured name.
func (v *VMBoot) Name() string { return v.cfg.Name }

// Task returns the underlying scheduler task (the unit an AutoTuner
// manages).
func (v *VMBoot) Task() *sched.Task { return v.task }

// Slices returns the number of demand slices released so far.
func (v *VMBoot) Slices() int { return v.slices }

// Phase returns the name of the boot phase active at the given
// instant, or "steady" once the ramp has completed ("" before Start).
func (v *VMBoot) Phase(at simtime.Time) string {
	if !v.started || at < v.base {
		return ""
	}
	elapsed := at.Sub(v.base)
	for _, ph := range v.cfg.Phases {
		if elapsed < ph.Len {
			return ph.Name
		}
		elapsed -= ph.Len
	}
	return "steady"
}

// Booted reports whether the boot ramp has completed at the given
// instant.
func (v *VMBoot) Booted(at simtime.Time) bool { return v.Phase(at) == "steady" }

// mult returns the demand multiplier of the phase active at elapsed
// time since base.
func (v *VMBoot) mult(elapsed simtime.Duration) float64 {
	for _, ph := range v.cfg.Phases {
		if elapsed < ph.Len {
			return ph.Mult
		}
		elapsed -= ph.Len
	}
	return 1
}

// Start begins the boot sequence at the given instant (clamped to the
// present).
func (v *VMBoot) Start(at simtime.Time) {
	if v.started {
		panic("workload: VMBoot started twice")
	}
	v.started = true
	if now := v.lt.now(); at < now {
		at = now
	}
	v.base = at
	next := at
	var slice func()
	slice = func() {
		if v.stopped {
			return
		}
		v.release(v.lt.now())
		next = next.Add(v.cfg.Period)
		v.lt.at(next, slice)
	}
	v.lt.at(next, slice)
}

// Stop quiesces the VM: the next scheduled demand slice becomes a
// no-op. Idempotent; safe before Start.
func (v *VMBoot) Stop() { v.stopped = true }

// release queues one demand slice: the phase multiplier times the
// steady demand, jittered, capped at the period. Boot-phase slices
// emit a disk read() (image and module loading); every slice emits a
// final nanosleep-style block.
func (v *VMBoot) release(now simtime.Time) {
	v.slices++
	m := v.mult(now.Sub(v.base))
	d := float64(v.cfg.SteadyDemand) * m
	if v.cfg.Jitter > 0 {
		d *= v.r.Norm(1, v.cfg.Jitter)
	}
	if min := 0.05 * float64(v.cfg.SteadyDemand); d < min {
		d = min
	}
	if max := float64(v.cfg.Period); d > max {
		d = max
	}
	demand := simtime.Duration(d)
	j := sched.NewJob(now, demand, now.Add(v.cfg.Period))
	if v.cfg.Sink != nil {
		pid := v.task.PID()
		if m != 1 { // booting: disk traffic
			j.AddHook(0, func(at simtime.Time) {
				if ov := v.cfg.Sink.Syscall(at, pid, int(SysRead)); ov > 0 {
					j.ExtendDemand(ov)
				}
			})
		}
		j.AddHook(demand, func(at simtime.Time) {
			if ov := v.cfg.Sink.Syscall(at, pid, int(SysNanosleep)); ov > 0 {
				j.ExtendDemand(ov)
			}
		})
	}
	v.task.Release(j)
}
