package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// GameLoopConfig parameterises a fixed-rate game loop.
type GameLoopConfig struct {
	// Name identifies the instance (task name, reports).
	Name string
	// FramePeriod is the fixed frame interval; every frame's deadline
	// is the release of the next one (a late frame is a dropped frame,
	// there is no catching up on a v-synced display).
	FramePeriod simtime.Duration
	// MeanDemand is the mean per-frame service demand.
	MeanDemand simtime.Duration
	// Jitter is the relative per-frame demand spread: each frame draws
	// uniformly from MeanDemand * [1-Jitter, 1+Jitter]. Scene
	// complexity, not load, so it stays bounded — the deadline
	// sensitivity comes from the spikes, not from drift.
	Jitter float64
	// Sink receives the loop's input-poll and present syscalls (nil:
	// untraced).
	Sink SyscallSink
	// OnRequest receives one Request per completed frame (nil:
	// unobserved).
	OnRequest RequestObserver
}

// DefaultGameLoopConfig returns a 60 FPS loop: 16.7ms frames, demand
// jittered ±35% around the mean implied by the caller's utilisation.
func DefaultGameLoopConfig(name string) GameLoopConfig {
	return GameLoopConfig{
		Name:        name,
		FramePeriod: 16667 * simtime.Microsecond,
		MeanDemand:  3333 * simtime.Microsecond, // 20% of a core
		Jitter:      0.35,
	}
}

// GameLoop is a fixed-frame-deadline workload: frames release on a
// rigid period grid and each must finish before the next release.
// Unlike the Player (whose A/V clock tolerates ahead-of-time
// decoding), a game loop is deadline-sensitive every frame — exactly
// the workload a balancing policy must not strand on an overloaded
// core. Each frame polls input at the start and presents at the end,
// so the period analyser sees a clean frame-rate line.
type GameLoop struct {
	cfg     GameLoopConfig
	sd      *sched.Scheduler
	r       *rng.Source
	lt      laneTimers
	task    *sched.Task
	frames  int
	started bool
	stopped bool
}

// MoveLane implements LaneMover: re-arm the frame grid on the
// destination lane and emit future syscalls into its tracer.
func (g *GameLoop) MoveLane(dst *sim.Engine, sink SyscallSink) {
	g.lt.move(dst)
	if sink != nil {
		g.cfg.Sink = sink
	}
}

// NewGameLoop prepares a game loop. The task exists from construction
// (so PID filters can be installed); no frames release until Start.
func NewGameLoop(sd *sched.Scheduler, r *rng.Source, cfg GameLoopConfig) *GameLoop {
	if cfg.FramePeriod <= 0 {
		panic(fmt.Sprintf("workload: gameloop %q: frame period %v must be positive", cfg.Name, cfg.FramePeriod))
	}
	if cfg.MeanDemand <= 0 {
		panic(fmt.Sprintf("workload: gameloop %q: mean demand %v must be positive", cfg.Name, cfg.MeanDemand))
	}
	if cfg.Jitter < 0 || cfg.Jitter >= 1 {
		panic(fmt.Sprintf("workload: gameloop %q: jitter %v out of [0,1)", cfg.Name, cfg.Jitter))
	}
	g := &GameLoop{cfg: cfg, sd: sd, r: r, lt: laneTimers{eng: sd.Engine()}, task: sd.NewTask(cfg.Name)}
	if cfg.OnRequest != nil {
		g.task.OnJobComplete = observeCompletion(cfg.OnRequest, cfg.FramePeriod)
	}
	return g
}

// Name returns the loop's configured name.
func (g *GameLoop) Name() string { return g.cfg.Name }

// Task returns the underlying scheduler task (the unit an AutoTuner
// manages).
func (g *GameLoop) Task() *sched.Task { return g.task }

// Frames returns the number of frames released so far.
func (g *GameLoop) Frames() int { return g.frames }

// Start begins the frame grid at the given instant (clamped to the
// present).
func (g *GameLoop) Start(at simtime.Time) {
	if g.started {
		panic("workload: GameLoop started twice")
	}
	g.started = true
	if now := g.lt.now(); at < now {
		at = now
	}
	next := at
	var frame func()
	frame = func() {
		if g.stopped {
			return
		}
		g.release(g.lt.now())
		next = next.Add(g.cfg.FramePeriod)
		g.lt.at(next, frame)
	}
	g.lt.at(next, frame)
}

// Stop quiesces the frame grid: the next scheduled frame becomes a
// no-op. Idempotent; safe before Start.
func (g *GameLoop) Stop() { g.stopped = true }

// release queues one frame: jittered demand, deadline at the next
// frame release, an input poll() at the start and a present write()
// at the end.
func (g *GameLoop) release(now simtime.Time) {
	g.frames++
	lo := float64(g.cfg.MeanDemand) * (1 - g.cfg.Jitter)
	hi := float64(g.cfg.MeanDemand) * (1 + g.cfg.Jitter)
	d := simtime.Duration(g.r.Uniform(lo, hi))
	if d < simtime.Microsecond {
		d = simtime.Microsecond
	}
	j := sched.NewJob(now, d, now.Add(g.cfg.FramePeriod))
	if g.cfg.Sink != nil {
		pid := g.task.PID()
		j.AddHook(0, func(at simtime.Time) {
			if ov := g.cfg.Sink.Syscall(at, pid, int(SysPoll)); ov > 0 {
				j.ExtendDemand(ov)
			}
		})
		j.AddHook(d, func(at simtime.Time) {
			if ov := g.cfg.Sink.Syscall(at, pid, int(SysWrite)); ov > 0 {
				j.ExtendDemand(ov)
			}
		})
	}
	g.task.Release(j)
}
