package workload_test

import (
	"testing"

	"repro/internal/ktrace"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func TestGameLoopMeetsFrameDeadlinesUnderGenerousReservation(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(3)
	cfg := workload.DefaultGameLoopConfig("game")
	g := workload.NewGameLoop(sd, r.Split(), cfg)
	// A reservation comfortably above the jittered worst case.
	srv := sd.NewServer("game", simtime.Duration(1.5*float64(cfg.MeanDemand)), cfg.FramePeriod, sched.HardCBS)
	g.Task().AttachTo(srv, 0)
	g.Start(0)
	eng.RunUntil(simtime.Time(5 * simtime.Second))

	st := g.Task().Stats()
	// 5s at ~60 FPS is ~300 frames.
	if st.Completed < 290 {
		t.Errorf("completed %d frames in 5s, want ~300", st.Completed)
	}
	if st.Missed != 0 {
		t.Errorf("%d frame deadlines missed under a generous reservation", st.Missed)
	}
	if g.Frames() < st.Completed {
		t.Errorf("Frames() = %d < completed %d", g.Frames(), st.Completed)
	}
}

func TestGameLoopDemandIsJittered(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(4)
	cfg := workload.DefaultGameLoopConfig("game")
	tracer := ktrace.NewBuffer(ktrace.QTrace, 1<<14)
	cfg.Sink = tracer
	g := workload.NewGameLoop(sd, r.Split(), cfg)
	g.Start(0)
	eng.RunUntil(simtime.Time(2 * simtime.Second))

	// Best-effort on an idle core: every frame runs to completion, so
	// consumed time per frame reflects the demand draw. The mean must
	// sit near MeanDemand and the loop must not be constant-demand.
	st := g.Task().Stats()
	if st.Completed < 100 {
		t.Fatalf("only %d frames completed", st.Completed)
	}
	mean := float64(st.Consumed) / float64(st.Completed)
	if mean < 0.8*float64(cfg.MeanDemand) || mean > 1.2*float64(cfg.MeanDemand) {
		t.Errorf("mean frame demand %.0fns, want near %v", mean, cfg.MeanDemand)
	}
	// Two syscalls per frame (input poll + present) reach the tracer.
	events := tracer.DrainPID(g.Task().PID())
	if len(events) < 2*st.Completed-2 {
		t.Errorf("%d traced syscalls for %d frames, want ~2 per frame", len(events), st.Completed)
	}
}

func TestBackgroundServersAccessor(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(5)
	bg := workload.NewBackground(sd, r.Split(), "bg", 0.3, 3)
	if got := bg.Servers(); got != nil {
		t.Errorf("Servers() before Start = %v, want nil", got)
	}
	bg.Start(0)
	eng.RunUntil(simtime.Time(100 * simtime.Millisecond))
	srvs := bg.Servers()
	if len(srvs) != 3 {
		t.Fatalf("Servers() = %d entries, want 3", len(srvs))
	}
	var bw float64
	for _, s := range srvs {
		bw += s.Bandwidth()
	}
	if bw < 0.25 || bw > 0.35 {
		t.Errorf("background servers reserve %.3f, want ~0.3", bw)
	}
}
