package workload

import (
	"sort"

	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// SyscallSink receives the system calls issued by an application and
// returns the extra execution demand the tracing machinery charges for
// each recorded call (zero when untraced or filtered out). It is
// implemented by ktrace.Buffer.
type SyscallSink interface {
	Syscall(now simtime.Time, pid int, nr int) simtime.Duration
}

// PlayerConfig parameterises a media player model.
type PlayerConfig struct {
	Name string

	// Period is the frame period (e.g. 40ms for 25 fps video,
	// ~30.77ms for the paper's 32.5Hz mp3 clock).
	Period simtime.Duration
	// ReleaseJitter is the half-width of the uniform jitter applied
	// independently to each frame release instant (no drift).
	ReleaseJitter simtime.Duration

	// MeanDemand is the average per-frame decode time.
	MeanDemand simtime.Duration
	// DemandJitter is the relative standard deviation of the
	// multiplicative noise on each frame's decode time.
	DemandJitter float64

	// GOP, if positive, imposes an MPEG group-of-pictures structure of
	// that length (pattern I BB P BB P ...): I frames cost IBoost times
	// the P-frame demand and B frames BDrop times it. Zero disables
	// the structure (audio-style constant load).
	GOP    int
	IBoost float64
	BDrop  float64

	// Syscall emission: uniformly drawn counts for the start-of-job and
	// end-of-job bursts, plus scattered mid-job calls.
	StartBurstMin, StartBurstMax int
	EndBurstMin, EndBurstMax     int
	MidCallsMax                  int

	// Sink receives emitted syscalls; nil disables emission.
	Sink SyscallSink
}

// VideoPlayerConfig returns the configuration used for the paper's
// video experiments (Figs 13-14, Table 3): a 25 fps stream with GOP
// structure and the given mean utilisation of the simulated CPU.
func VideoPlayerConfig(name string, meanUtil float64) PlayerConfig {
	period := 40 * simtime.Millisecond
	return PlayerConfig{
		Name:          name,
		Period:        period,
		ReleaseJitter: 500 * simtime.Microsecond,
		MeanDemand:    simtime.Duration(meanUtil * float64(period)),
		DemandJitter:  0.10,
		GOP:           12,
		IBoost:        1.8,
		BDrop:         0.6,
		StartBurstMin: 6, StartBurstMax: 12,
		EndBurstMin: 8, EndBurstMax: 14,
		MidCallsMax: 4,
	}
}

// MP3PlayerConfig returns the configuration matching the paper's mp3
// tracing experiments (Figs 6-12): a 32.5Hz frame clock and light,
// near-constant decode load.
func MP3PlayerConfig(name string) PlayerConfig {
	period := simtime.FromHertz(32.5)
	return PlayerConfig{
		Name:          name,
		Period:        period,
		ReleaseJitter: 300 * simtime.Microsecond,
		MeanDemand:    simtime.Duration(0.15 * float64(period)),
		DemandJitter:  0.08,
		StartBurstMin: 5, StartBurstMax: 9,
		EndBurstMin: 7, EndBurstMax: 12,
		MidCallsMax: 3,
	}
}

// Player is a generative model of a periodic multimedia application.
type Player struct {
	cfg  PlayerConfig
	lt   laneTimers
	task *sched.Task
	r    *rng.Source

	startedRun bool
	stopped    bool

	frame    int
	finishes []simtime.Time
	displays []simtime.Time
	demands  []simtime.Duration
	gridBase simtime.Time
	nextSlot int

	// syscall mix weights, cumulative for sampling
	mixCalls []Syscall
	mixCum   []float64
}

// gopWeight returns the demand multiplier of frame k under the GOP
// structure, normalised so the average multiplier over a GOP is 1.
func (p *Player) gopWeight(k int) float64 {
	if p.cfg.GOP <= 0 {
		return 1
	}
	g := p.cfg.GOP
	pos := k % g
	var w float64
	switch {
	case pos == 0:
		w = p.cfg.IBoost
	case pos%3 == 0:
		w = 1 // P frame every third slot
	default:
		w = p.cfg.BDrop
	}
	// normalisation: one I, (g/3 - 1 + remainder) P, rest B
	var sum float64
	for i := 0; i < g; i++ {
		switch {
		case i == 0:
			sum += p.cfg.IBoost
		case i%3 == 0:
			sum += 1
		default:
			sum += p.cfg.BDrop
		}
	}
	return w * float64(g) / sum
}

// NewPlayer creates the player's task in the best-effort class; attach
// it to a server before starting if a reservation is wanted.
func NewPlayer(sd *sched.Scheduler, r *rng.Source, cfg PlayerConfig) *Player {
	if cfg.Period <= 0 {
		panic("workload: player period must be positive")
	}
	if cfg.MeanDemand <= 0 {
		panic("workload: player demand must be positive")
	}
	p := &Player{
		cfg:  cfg,
		lt:   laneTimers{eng: sd.Engine()},
		task: sd.NewTask(cfg.Name),
		r:    r,
	}
	p.task.OnJobComplete = func(j *sched.Job, now simtime.Time) {
		p.finishes = append(p.finishes, now)
		// The frame is displayed at its slot of the output time grid
		// (the player's A/V-sync clock) or immediately if decoded too
		// late for it. This is what makes the paper's inter-frame-time
		// metric sensitive to starvation but not to ahead-of-time
		// decoding.
		slot := p.gridBase.Add(simtime.Duration(p.nextSlot+1) * p.cfg.Period)
		p.nextSlot++
		if now.After(slot) {
			p.displays = append(p.displays, now)
		} else {
			p.displays = append(p.displays, slot)
		}
	}
	// The Figure-4 mix: ioctl-dominated ALSA traffic.
	mix := []struct {
		call Syscall
		w    float64
	}{
		{SysIoctl, 0.62}, {SysRead, 0.09}, {SysWrite, 0.07},
		{SysGettimeofday, 0.06}, {SysFutex, 0.05}, {SysPoll, 0.04},
		{SysSelect, 0.03}, {SysLseek, 0.02}, {SysMmap, 0.01}, {SysStat, 0.01},
	}
	var cum float64
	for _, m := range mix {
		cum += m.w
		p.mixCalls = append(p.mixCalls, m.call)
		p.mixCum = append(p.mixCum, cum)
	}
	return p
}

// Task returns the underlying scheduler task.
func (p *Player) Task() *sched.Task { return p.task }

// Name returns the player's configured name.
func (p *Player) Name() string { return p.cfg.Name }

// Config returns the player configuration.
func (p *Player) Config() PlayerConfig { return p.cfg }

// Start begins releasing frames at the given instant (clamped to the
// present, so a mid-run start cannot schedule into the past). Starting
// twice panics: a second release loop would corrupt the frame grid.
func (p *Player) Start(at simtime.Time) {
	if p.startedRun {
		panic("workload: Player started twice")
	}
	p.startedRun = true
	if now := p.lt.now(); at < now {
		at = now
	}
	p.gridBase = at
	next := at
	var release func()
	release = func() {
		if p.stopped {
			return
		}
		p.releaseFrame()
		next = next.Add(p.cfg.Period)
		p.lt.at(next, release)
	}
	first := at
	if j := p.cfg.ReleaseJitter; j > 0 {
		first = first.Add(simtime.Duration(p.r.Int63n(int64(2*j))) - j)
		if first < p.lt.now() {
			first = p.lt.now()
		}
	}
	p.lt.at(first, release)
}

func (p *Player) sampleSyscall() Syscall {
	u := p.r.Float64()
	for i, c := range p.mixCum {
		if u < c {
			return p.mixCalls[i]
		}
	}
	return p.mixCalls[len(p.mixCalls)-1]
}

func (p *Player) releaseFrame() {
	now := p.lt.now()
	demand := float64(p.cfg.MeanDemand) * p.gopWeight(p.frame)
	if p.cfg.DemandJitter > 0 {
		demand *= p.r.Norm(1, p.cfg.DemandJitter)
	}
	if min := 0.05 * float64(p.cfg.MeanDemand); demand < min {
		demand = min
	}
	p.frame++
	total := simtime.Duration(demand)
	deadline := now.Add(p.cfg.Period)
	j := sched.NewJob(now, total, deadline)
	p.addSyscallHooks(j, total)
	p.demands = append(p.demands, total)

	// Apply release jitter by deferring the actual release slightly.
	if jit := p.cfg.ReleaseJitter; jit > 0 {
		d := simtime.Duration(p.r.Int63n(int64(2 * jit)))
		p.lt.after(d, func() {
			if p.stopped {
				return
			}
			p.task.Release(j)
		})
	} else {
		p.task.Release(j)
	}
}

// addSyscallHooks attaches this frame's syscall emissions as progress
// hooks: a burst near progress 0, a burst near completion, and a few
// scattered mid-frame calls.
func (p *Player) addSyscallHooks(j *sched.Job, total simtime.Duration) {
	if p.cfg.Sink == nil {
		return
	}
	type emit struct {
		off simtime.Duration
		nr  Syscall
	}
	var emits []emit
	span := func(lo, hi float64) simtime.Duration {
		return simtime.Duration(p.r.Uniform(lo, hi) * float64(total))
	}
	nStart := p.cfg.StartBurstMin
	if d := p.cfg.StartBurstMax - p.cfg.StartBurstMin; d > 0 {
		nStart += p.r.Intn(d + 1)
	}
	for i := 0; i < nStart; i++ {
		emits = append(emits, emit{span(0, 0.04), p.sampleSyscall()})
	}
	nEnd := p.cfg.EndBurstMin
	if d := p.cfg.EndBurstMax - p.cfg.EndBurstMin; d > 0 {
		nEnd += p.r.Intn(d + 1)
	}
	for i := 0; i < nEnd; i++ {
		emits = append(emits, emit{span(0.96, 1.0), p.sampleSyscall()})
	}
	if p.cfg.MidCallsMax > 0 {
		for i, n := 0, p.r.Intn(p.cfg.MidCallsMax+1); i < n; i++ {
			emits = append(emits, emit{span(0.1, 0.9), p.sampleSyscall()})
		}
	}
	// The final blocking call of the job body (the clock_nanosleep or
	// ALSA wait that suspends the task until the next activation).
	emits = append(emits, emit{total, SysNanosleep})

	sort.Slice(emits, func(a, b int) bool { return emits[a].off < emits[b].off })
	pid := p.task.PID()
	for _, e := range emits {
		nr := int(e.nr)
		// The sink is read at fire time, not captured: a cross-lane
		// migration repoints p.cfg.Sink at the destination core's
		// tracer, and in-flight jobs must emit there too.
		j.AddHook(e.off, func(now simtime.Time) {
			if ov := p.cfg.Sink.Syscall(now, pid, nr); ov > 0 {
				j.ExtendDemand(ov)
			}
		})
	}
}

// MoveLane implements LaneMover: re-arm the release loop and any
// in-flight jittered releases on the destination lane and emit future
// syscalls into the destination core's tracer.
func (p *Player) MoveLane(dst *sim.Engine, sink SyscallSink) {
	p.lt.move(dst)
	if sink != nil {
		p.cfg.Sink = sink
	}
}

// Stop quiesces the player: the release loop and any in-flight
// jittered releases become no-ops at their next firing. Jobs already
// queued on the task are unaffected. Idempotent; safe before Start.
func (p *Player) Stop() { p.stopped = true }

// Frames returns the number of frames released so far.
func (p *Player) Frames() int { return p.frame }

// Finishes returns the completion instants of all finished frames.
func (p *Player) Finishes() []simtime.Time { return p.finishes }

// Demands returns the decode demand of each released frame.
func (p *Player) Demands() []simtime.Duration { return p.demands }

// InterFrameTimes returns the paper's application-level QoS metric:
// "the time between the visualisation of two video frames". Frames
// decoded in time are shown on the player's periodic output grid;
// frames decoded late are shown as soon as they are ready, so
// starvation widens these intervals (and the catch-up narrows them).
func (p *Player) InterFrameTimes() []simtime.Duration {
	return diffs(p.displays)
}

// InterCompletionTimes returns the intervals between raw decode
// completions, without the display grid — the scheduler-facing view
// used by tests of the decode pipeline itself.
func (p *Player) InterCompletionTimes() []simtime.Duration {
	return diffs(p.finishes)
}

func diffs(ts []simtime.Time) []simtime.Duration {
	if len(ts) < 2 {
		return nil
	}
	out := make([]simtime.Duration, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out[i-1] = ts[i].Sub(ts[i-1])
	}
	return out
}
