package workload

import (
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// TranscoderConfig parameterises the ffmpeg-like batch workload used
// for the tracer-overhead measurement (Table 1).
type TranscoderConfig struct {
	Name string
	// TotalWork is the pure CPU demand of the transcode, without any
	// tracing overhead (the paper's NOTRACE baseline, 21.09s).
	TotalWork simtime.Duration
	// WorkJitter is the relative standard deviation of the run-to-run
	// demand noise (the paper's baseline shows ~0.45%).
	WorkJitter float64
	// SyscallEvery is the execution progress between consecutive
	// syscalls (frame reads/writes). The paper's ffmpeg emits a few
	// hundred calls per second of CPU time.
	SyscallEvery simtime.Duration
	// Sink receives the emitted syscalls; nil disables emission.
	Sink SyscallSink
	// OnRequest receives one Request when the transcode unit completes
	// (nil: unobserved). Transcodes run without a deadline, so the
	// request's latency is the batch turnaround time.
	OnRequest RequestObserver
}

// DefaultTranscoderConfig mirrors Table 1's setup.
func DefaultTranscoderConfig(name string) TranscoderConfig {
	return TranscoderConfig{
		Name:         name,
		TotalWork:    simtime.Duration(21.09 * float64(simtime.Second)),
		WorkJitter:   0.0045,
		SyscallEvery: 2500 * simtime.Microsecond, // ~400 calls per CPU second
	}
}

// Transcoder is a single CPU-bound batch job that emits syscalls at
// regular execution-progress intervals.
type Transcoder struct {
	cfg     TranscoderConfig
	lt      laneTimers
	task    *sched.Task
	r       *rng.Source
	calls   int
	finish  simtime.Time
	started bool
}

// MoveLane implements LaneMover: re-arm a pending deferred start on the
// destination lane and emit future syscalls into its tracer.
func (tr *Transcoder) MoveLane(dst *sim.Engine, sink SyscallSink) {
	tr.lt.move(dst)
	if sink != nil {
		tr.cfg.Sink = sink
	}
}

// NewTranscoder creates the transcoder's task in the best-effort class.
func NewTranscoder(sd *sched.Scheduler, r *rng.Source, cfg TranscoderConfig) *Transcoder {
	if cfg.TotalWork <= 0 {
		panic("workload: transcoder work must be positive")
	}
	if cfg.SyscallEvery <= 0 {
		panic("workload: transcoder syscall interval must be positive")
	}
	tr := &Transcoder{cfg: cfg, lt: laneTimers{eng: sd.Engine()}, task: sd.NewTask(cfg.Name), r: r}
	tr.task.OnJobComplete = func(j *sched.Job, now simtime.Time) { tr.finish = now }
	if cfg.OnRequest != nil {
		complete := observeCompletion(cfg.OnRequest, 0)
		tr.task.OnJobComplete = func(j *sched.Job, now simtime.Time) {
			tr.finish = now
			complete(j, now)
		}
	}
	return tr
}

// Task returns the underlying scheduler task.
func (tr *Transcoder) Task() *sched.Task { return tr.task }

// Name returns the transcoder's configured name.
func (tr *Transcoder) Name() string { return tr.cfg.Name }

// Start releases the transcode job at the given instant (clamped to
// the present, so a mid-run start cannot schedule into the past).
// Starting twice panics, like every other workload.
func (tr *Transcoder) Start(at simtime.Time) {
	if tr.started {
		panic("workload: Transcoder started twice")
	}
	tr.started = true
	if now := tr.lt.now(); at < now {
		at = now
	}
	tr.lt.at(at, func() {
		work := float64(tr.cfg.TotalWork)
		if tr.cfg.WorkJitter > 0 {
			work *= tr.r.Norm(1, tr.cfg.WorkJitter)
		}
		total := simtime.Duration(work)
		j := sched.NewJob(tr.lt.now(), total, simtime.Never)
		if tr.cfg.Sink != nil {
			pid := tr.task.PID()
			// Alternate read (demux input) and write (mux output),
			// with a periodic lseek. The sink is read at fire time so
			// an in-flight transcode migrating across lanes emits the
			// rest of its calls into the destination core's tracer.
			i := 0
			for off := tr.cfg.SyscallEvery; off < total; off += tr.cfg.SyscallEvery {
				nr := SysRead
				switch i % 4 {
				case 1, 3:
					nr = SysWrite
				case 2:
					nr = SysLseek
				}
				i++
				j.AddHook(off, func(now simtime.Time) {
					tr.calls++
					if ov := tr.cfg.Sink.Syscall(now, pid, int(nr)); ov > 0 {
						j.ExtendDemand(ov)
					}
				})
			}
		}
		tr.task.Release(j)
	})
}

// Calls returns the number of syscalls emitted so far.
func (tr *Transcoder) Calls() int { return tr.calls }

// Finished reports whether the transcode completed, and when.
func (tr *Transcoder) Finished() (simtime.Time, bool) {
	if tr.task.Stats().Completed == 0 {
		return 0, false
	}
	return tr.finish, true
}
