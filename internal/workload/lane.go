package workload

import (
	"repro/internal/sim"
	"repro/internal/simtime"
)

// LaneMover is implemented by every workload kind that can follow its
// reservation across engine lanes. On a machine whose cores run on
// separate sim.Engine lanes (smp.NewLaned), a workload's self-timers —
// release loops, jittered releases, arrival processes — live on the
// lane of the core it runs on; a cross-core migration must therefore
// re-arm them on the destination lane. MoveLane does exactly that, and
// repoints the workload's syscall sink at the destination core's
// tracer (nil keeps the current sink). It must only be called at a
// causality fence: both lanes resting at the same instant, with the
// workload's reservation already moved (sched.Detach/Adopt).
type LaneMover interface {
	MoveLane(dst *sim.Engine, sink SyscallSink)
}

// laneSlot is one pending self-timer: enough to cancel it on the
// source lane and re-arm the same callback at the same instant on the
// destination.
type laneSlot struct {
	ev sim.Timer
	at simtime.Time
	fn func()
}

// laneTimers tracks a workload's pending self-timers on its current
// engine lane. All scheduling goes through it, so a lane move is a
// single sweep: cancel every pending slot on the old lane, re-arm on
// the new one. Slots of fired timers are reused in place; the slice
// stays as small as the workload's peak number of in-flight timers
// (one for a release loop, a few for overlapping jittered releases).
type laneTimers struct {
	eng   *sim.Engine
	slots []laneSlot
}

// now returns the current instant of the workload's lane.
func (lt *laneTimers) now() simtime.Time { return lt.eng.Now() }

// at schedules fn at instant t on the current lane.
func (lt *laneTimers) at(t simtime.Time, fn func()) {
	s := laneSlot{ev: lt.eng.At(t, fn), at: t, fn: fn}
	for i := range lt.slots {
		if !lt.slots[i].ev.Pending() {
			lt.slots[i] = s
			return
		}
	}
	lt.slots = append(lt.slots, s)
}

// after schedules fn d from now on the current lane.
func (lt *laneTimers) after(d simtime.Duration, fn func()) {
	lt.at(lt.eng.Now().Add(d), fn)
}

// move re-arms every pending timer on dst and makes it the current
// lane. Both engines must rest at the same instant (a fence), so every
// pending slot is strictly in the future on dst too. On a single-lane
// machine (dst == current engine) it is a no-op, preserving the exact
// event sequence of the shared-engine configuration.
func (lt *laneTimers) move(dst *sim.Engine) {
	if dst == lt.eng {
		return
	}
	for i := range lt.slots {
		s := &lt.slots[i]
		if s.ev.Pending() {
			lt.eng.Cancel(s.ev)
			s.ev = dst.At(s.at, s.fn)
		}
	}
	lt.eng = dst
}
