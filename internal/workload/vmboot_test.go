package workload_test

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/simtime"
	"repro/internal/workload"
)

func TestVMBootDemandRampThenSteady(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(7)
	cfg := workload.DefaultVMBootConfig("vm", 0.2)
	cfg.Jitter = 0 // measure the ramp itself
	v := workload.NewVMBoot(sd, r.Split(), cfg)
	v.Start(0)

	// Walk the run in windows and measure the mean consumed demand per
	// slice in each (best-effort on an idle core: every slice runs to
	// completion, so consumed time tracks the demand draw).
	type window struct {
		until simtime.Time
		mult  float64 // expected demand multiplier
	}
	windows := []window{
		{simtime.Time(200 * simtime.Millisecond), 0.4},  // firmware
		{simtime.Time(600 * simtime.Millisecond), 2.2},  // kernel
		{simtime.Time(1200 * simtime.Millisecond), 1.5}, // services
		{simtime.Time(3 * simtime.Second), 1.0},         // steady
	}
	var prevConsumed simtime.Duration
	var prevCompleted int
	for _, w := range windows {
		eng.RunUntil(w.until)
		st := v.Task().Stats()
		slices := st.Completed - prevCompleted
		if slices < 5 {
			t.Fatalf("window until %v: only %d slices completed", w.until, slices)
		}
		mean := float64(st.Consumed-prevConsumed) / float64(slices)
		want := w.mult * float64(cfg.SteadyDemand)
		if mean < 0.85*want || mean > 1.15*want {
			t.Errorf("window until %v: mean slice demand %.0fns, want ~%.0fns (mult %.1f)",
				w.until, mean, want, w.mult)
		}
		prevConsumed, prevCompleted = st.Consumed, st.Completed
	}
}

func TestVMBootPhaseAccessor(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(8)
	v := workload.NewVMBoot(sd, r.Split(), workload.DefaultVMBootConfig("vm", 0.25))
	if got := v.Phase(0); got != "" {
		t.Errorf("Phase before Start = %q, want \"\"", got)
	}
	v.Start(0)
	cases := []struct {
		at   simtime.Time
		want string
	}{
		{simtime.Time(100 * simtime.Millisecond), "firmware"},
		{simtime.Time(400 * simtime.Millisecond), "kernel"},
		{simtime.Time(900 * simtime.Millisecond), "services"},
		{simtime.Time(2 * simtime.Second), "steady"},
	}
	for _, c := range cases {
		if got := v.Phase(c.at); got != c.want {
			t.Errorf("Phase(%v) = %q, want %q", c.at, got, c.want)
		}
	}
	if v.Booted(simtime.Time(500 * simtime.Millisecond)) {
		t.Error("Booted mid-kernel-phase")
	}
	if !v.Booted(simtime.Time(2 * simtime.Second)) {
		t.Error("not Booted after the ramp")
	}
	eng.RunUntil(simtime.Time(100 * simtime.Millisecond))
}

func TestVMBootStopQuiesces(t *testing.T) {
	eng, sd := newSim()
	r := rng.New(9)
	v := workload.NewVMBoot(sd, r.Split(), workload.DefaultVMBootConfig("vm", 0.25))
	v.Start(0)
	eng.RunUntil(simtime.Time(500 * simtime.Millisecond))
	v.Stop()
	at := v.Slices()
	eng.RunUntil(simtime.Time(2 * simtime.Second))
	// One slice may already be scheduled at Stop time; none after it.
	if v.Slices() > at+1 {
		t.Errorf("slices kept releasing after Stop: %d -> %d", at, v.Slices())
	}
}

func TestWorkloadStopQuiescesArrivals(t *testing.T) {
	// Every self-scheduling workload must go quiet after Stop: no new
	// jobs released, engine drains (Despawn and the cluster layer
	// depend on this).
	eng, sd := newSim()
	r := rng.New(10)

	ws := workload.NewWebServer(sd, r.Split(), workload.DefaultWebServerConfig("web"))
	gl := workload.NewGameLoop(sd, r.Split(), workload.DefaultGameLoopConfig("game"))
	pl := workload.NewPlayer(sd, r.Split(), workload.VideoPlayerConfig("vid", 0.2))
	bg := workload.NewBackground(sd, r.Split(), "bg", 0.2, 2)
	no := workload.NewNoise(sd, r.Split(), "noise",
		50*simtime.Millisecond, 2*simtime.Millisecond, nil)
	for _, s := range []interface{ Start(simtime.Time) }{ws, gl, pl, bg, no} {
		s.Start(0)
	}
	eng.RunUntil(simtime.Time(1 * simtime.Second))
	for _, s := range []interface{ Stop() }{ws, gl, pl, bg, no} {
		s.Stop()
	}
	// Give any already-scheduled release one period to fire, then
	// sample counters and confirm nothing moves afterwards.
	eng.RunUntil(simtime.Time(1200 * simtime.Millisecond))
	served, frames, vframes := ws.Served(), gl.Frames(), pl.Frames()
	eng.RunUntil(simtime.Time(5 * simtime.Second))
	if ws.Served() != served {
		t.Errorf("webserver served %d -> %d after Stop", served, ws.Served())
	}
	if gl.Frames() != frames {
		t.Errorf("gameloop frames %d -> %d after Stop", frames, gl.Frames())
	}
	if pl.Frames() != vframes {
		t.Errorf("player frames %d -> %d after Stop", vframes, pl.Frames())
	}
}
