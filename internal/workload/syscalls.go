// Package workload implements generative models of the legacy
// applications used in the paper's evaluation: an mplayer-like media
// player with bursty syscall emission and MPEG GOP-structured decode
// times, an ffmpeg-like CPU-bound transcoder, and synthetic periodic
// real-time load.
//
// The models are the reproduction's substitute for the closed binaries
// the authors traced. What matters for fidelity is the property the
// paper's Section 4.2 relies on: each job emits bursts of system calls
// concentrated at the beginning and end of its period, at instants
// that shift with scheduling delay. Jobs carry their syscalls as
// execution-progress hooks, so a preempted job emits its calls late —
// exactly the load sensitivity measured in Table 2.
package workload

// Syscall identifies a system call in the traced event stream. The
// numbering is internal to the reproduction (it does not follow any
// real kernel's table).
type Syscall int

// System calls emitted by the application models. The mix mirrors
// Figure 4 of the paper: an mplayer run is dominated by ioctl()
// traffic to the ALSA audio device.
const (
	SysIoctl Syscall = iota
	SysRead
	SysWrite
	SysPoll
	SysSelect
	SysNanosleep
	SysGettimeofday
	SysFutex
	SysMmap
	SysMunmap
	SysOpen
	SysClose
	SysLseek
	SysStat
	NumSyscalls int = iota
)

var syscallNames = [...]string{
	SysIoctl:        "ioctl",
	SysRead:         "read",
	SysWrite:        "write",
	SysPoll:         "poll",
	SysSelect:       "select",
	SysNanosleep:    "clock_nanosleep",
	SysGettimeofday: "gettimeofday",
	SysFutex:        "futex",
	SysMmap:         "mmap",
	SysMunmap:       "munmap",
	SysOpen:         "open",
	SysClose:        "close",
	SysLseek:        "lseek",
	SysStat:         "stat",
}

// String implements fmt.Stringer.
func (s Syscall) String() string {
	if s >= 0 && int(s) < len(syscallNames) {
		return syscallNames[s]
	}
	return "syscall?"
}
