package supervisor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
)

const ms = simtime.Millisecond

func TestGrantsInFullUnderCapacity(t *testing.T) {
	s := New(1)
	a, ok := s.Register("a", 0.01)
	if !ok {
		t.Fatal("register failed")
	}
	b, _ := s.Register("b", 0.01)
	qa := a.Request(20*ms, 100*ms)
	qb := b.Request(30*ms, 100*ms)
	if qa != 20*ms || qb != 30*ms {
		t.Errorf("grants %v,%v, want full 20ms,30ms", qa, qb)
	}
	if s.Saturated() {
		t.Error("supervisor claims saturation at 50% load")
	}
}

func TestCompressionUnderOverload(t *testing.T) {
	s := New(1)
	a, _ := s.Register("a", 0.05)
	b, _ := s.Register("b", 0.05)
	a.Request(80*ms, 100*ms)
	qb := b.Request(60*ms, 100*ms)
	if !s.Saturated() {
		t.Fatal("140% demand did not saturate")
	}
	if total := s.TotalGranted(); total > 1+1e-9 {
		t.Errorf("granted total %.4f > 1", total)
	}
	if qb >= 60*ms {
		t.Errorf("b granted %v, want compressed below request", qb)
	}
	if b.Granted() < 0.05 {
		t.Errorf("b granted %.4f below its minimum", b.Granted())
	}
}

func TestCompressionProportionalAboveFloors(t *testing.T) {
	s := New(1)
	a, _ := s.Register("a", 0.1)
	b, _ := s.Register("b", 0.1)
	a.Request(80*ms, 100*ms) // 0.8 requested
	b.Request(60*ms, 100*ms) // 0.6 requested, total 1.4
	// Residual above floors: 1 - 0.2 = 0.8, headrooms 0.7 and 0.5.
	wantA := 0.1 + 0.8*0.7/1.2
	wantB := 0.1 + 0.8*0.5/1.2
	if math.Abs(a.Granted()-wantA) > 1e-9 {
		t.Errorf("a granted %.4f, want %.4f", a.Granted(), wantA)
	}
	if math.Abs(b.Granted()-wantB) > 1e-9 {
		t.Errorf("b granted %.4f, want %.4f", b.Granted(), wantB)
	}
}

func TestCompressionNeverExceedsRequest(t *testing.T) {
	s := New(1)
	small, _ := s.Register("small", 0.3) // big floor, small request
	big, _ := s.Register("big", 0.0)
	small.Request(5*ms, 100*ms) // wants only 5%
	big.Request(200*ms, 200*ms) // wants 100%
	if small.Granted() > small.Requested()+1e-12 {
		t.Errorf("small granted %.4f above its request %.4f", small.Granted(), small.Requested())
	}
	if total := s.TotalGranted(); total > 1+1e-9 {
		t.Errorf("total granted %.4f", total)
	}
	// The big client should receive the rest of the CPU.
	if big.Granted() < 0.94 {
		t.Errorf("big granted %.4f, want ~0.95", big.Granted())
	}
}

func TestAdmissionControlOnMinimums(t *testing.T) {
	s := New(1)
	if _, ok := s.Register("a", 0.6); !ok {
		t.Fatal("first registration rejected")
	}
	if _, ok := s.Register("b", 0.5); ok {
		t.Error("registration accepted with Σ minimums > 1")
	}
	_, _, rejected := s.Stats()
	if rejected != 1 {
		t.Errorf("rejected = %d, want 1", rejected)
	}
}

func TestReleaseFreesBandwidth(t *testing.T) {
	s := New(1)
	a, _ := s.Register("a", 0)
	b, _ := s.Register("b", 0)
	a.Request(90*ms, 100*ms)
	qb := b.Request(90*ms, 100*ms)
	if qb >= 90*ms {
		t.Fatalf("b granted %v despite contention", qb)
	}
	a.Release()
	qb = b.Request(90*ms, 100*ms)
	if qb != 90*ms {
		t.Errorf("after release, b granted %v, want 90ms", qb)
	}
}

func TestUnregister(t *testing.T) {
	s := New(1)
	a, _ := s.Register("a", 0.2)
	s.Unregister(a)
	if _, ok := s.Register("b", 0.9); !ok {
		t.Error("bandwidth of unregistered client not freed")
	}
	defer func() {
		if recover() == nil {
			t.Error("request on unregistered client did not panic")
		}
	}()
	a.Request(10*ms, 100*ms)
}

func TestULubBelowOne(t *testing.T) {
	s := New(0.7)
	a, _ := s.Register("a", 0)
	q := a.Request(90*ms, 100*ms)
	if got := float64(q) / float64(100*ms); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("granted %.3f, want capped at U_lub=0.7", got)
	}
}

func TestInvalidULubPanics(t *testing.T) {
	for _, u := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", u)
				}
			}()
			New(u)
		}()
	}
}

func TestQuickInvariants(t *testing.T) {
	// Property: for arbitrary request patterns, (1) Σ granted ≤ U_lub,
	// (2) granted ≤ requested per client, (3) granted ≥ min(floor,
	// requested) per client.
	check := func(seed uint64) bool {
		r := rng.New(seed)
		s := New(1)
		n := 1 + r.Intn(6)
		clients := make([]*Client, 0, n)
		var floorSum float64
		for i := 0; i < n; i++ {
			floor := r.Float64() * 0.3
			if floorSum+floor > 1 {
				floor = 0
			}
			c, ok := s.Register("c", floor)
			if ok {
				floorSum += floor
				clients = append(clients, c)
			}
		}
		if len(clients) == 0 {
			return true
		}
		for step := 0; step < 20; step++ {
			c := clients[r.Intn(len(clients))]
			if r.Bool(0.1) {
				c.Release()
				continue
			}
			period := simtime.Duration(1+r.Intn(200)) * ms
			budget := simtime.Duration(r.Int63n(int64(period))) + 1
			c.Request(budget, period)
			var sum float64
			for _, cl := range clients {
				g := cl.Granted()
				req := cl.Requested()
				if g > req+1e-9 {
					t.Logf("seed %d: granted %v > requested %v", seed, g, req)
					return false
				}
				sum += g
			}
			if sum > s.ULub()+1e-9 {
				t.Logf("seed %d: total granted %v", seed, sum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWeightedCompression(t *testing.T) {
	s := New(1)
	heavy, _ := s.RegisterWeighted("heavy", 0, 3)
	light, _ := s.RegisterWeighted("light", 0, 1)
	heavy.Request(90*ms, 100*ms) // 0.9
	light.Request(90*ms, 100*ms) // 0.9, total 1.8
	// Residual 1.0 shared 3:1 on equal headrooms, neither capped.
	wantHeavy := 3.0 / 4
	wantLight := 1.0 / 4
	if math.Abs(heavy.Granted()-wantHeavy) > 1e-9 {
		t.Errorf("heavy granted %.4f, want %.4f", heavy.Granted(), wantHeavy)
	}
	if math.Abs(light.Granted()-wantLight) > 1e-9 {
		t.Errorf("light granted %.4f, want %.4f", light.Granted(), wantLight)
	}
	if heavy.Weight() != 3 || light.Weight() != 1 {
		t.Error("weights not recorded")
	}
}

func TestWeightedCapsAtRequest(t *testing.T) {
	s := New(1)
	heavy, _ := s.RegisterWeighted("heavy", 0, 100)
	light, _ := s.RegisterWeighted("light", 0, 1)
	heavy.Request(30*ms, 100*ms) // modest request, huge weight
	light.Request(90*ms, 100*ms) // total 1.2
	if heavy.Granted() > 0.3+1e-12 {
		t.Errorf("heavy granted %.4f above its request", heavy.Granted())
	}
	// The excess must flow to the light client.
	if light.Granted() < 0.69 {
		t.Errorf("light granted %.4f, want ~0.7 (the remainder)", light.Granted())
	}
}

func TestNonPositiveWeightDefaultsToOne(t *testing.T) {
	s := New(1)
	c, ok := s.RegisterWeighted("c", 0, -2)
	if !ok || c.Weight() != 1 {
		t.Errorf("weight = %v", c.Weight())
	}
}

func TestStatsCounters(t *testing.T) {
	s := New(1)
	a, _ := s.Register("a", 0)
	b, _ := s.Register("b", 0)
	a.Request(50*ms, 100*ms)
	b.Request(80*ms, 100*ms) // forces compression
	grants, compressed, _ := s.Stats()
	if grants != 2 {
		t.Errorf("grants = %d, want 2", grants)
	}
	if compressed != 1 {
		t.Errorf("compressed = %d, want 1", compressed)
	}
}
