// Package supervisor implements the paper's supervisor component
// (Sec. 4, Fig. 3): task controllers submit reservation requests
// (Q_req, T) and the supervisor enforces the EDF schedulability
// condition Σ Qi/Ti ≤ U_lub, compressing requests when they would
// saturate the CPU.
//
// The compression policy follows the AQuoSA architecture the paper
// builds on [23]: each client is guaranteed a minimum bandwidth, and
// the residual capacity is shared proportionally to the amount
// requested above the minimum (an elastic, weight-free compression).
package supervisor

import (
	"fmt"
	"sort"

	"repro/internal/simtime"
)

// Client identifies one task controller registered with the
// supervisor.
type Client struct {
	name string
	sup  *Supervisor

	minBW     float64
	weight    float64 // share of the residual under compression
	requested float64 // last requested bandwidth
	granted   float64 // last granted bandwidth
	period    simtime.Duration
	active    bool
}

// Name returns the client's name.
func (c *Client) Name() string { return c.name }

// Supervisor enforces the global schedulability bound.
type Supervisor struct {
	ulub    float64
	clients []*Client

	grants      int
	compressed  int // requests granted at reduced bandwidth
	rejected    int
	lastTotal   float64
	lastPressed bool
}

// New returns a supervisor enforcing Σ Q/T ≤ ulub. The paper uses
// ulub = 1 (Eq. 1); practical deployments leave headroom for
// non-reserved work, so any value in (0, 1] is accepted.
func New(ulub float64) *Supervisor {
	if ulub <= 0 || ulub > 1 {
		panic(fmt.Sprintf("supervisor: U_lub %v out of (0,1]", ulub))
	}
	return &Supervisor{ulub: ulub}
}

// ULub returns the enforced utilisation bound.
func (s *Supervisor) ULub() float64 { return s.ulub }

// Register adds a client with the given guaranteed minimum bandwidth
// and unit compression weight. Registration fails (returns nil and
// false) when the minimums of all clients would alone exceed the
// bound — the admission-control step.
func (s *Supervisor) Register(name string, minBW float64) (*Client, bool) {
	return s.RegisterWeighted(name, minBW, 1)
}

// RegisterWeighted is Register with an explicit compression weight:
// under saturation the residual bandwidth above the floors is shared
// proportionally to weight × demand-above-floor, so a weight-2 client
// loses half as much of its request as a weight-1 client (the elastic
// scheme of the AQuoSA architecture [23]). Non-positive weights are
// treated as 1.
func (s *Supervisor) RegisterWeighted(name string, minBW, weight float64) (*Client, bool) {
	if minBW < 0 {
		minBW = 0
	}
	if weight <= 0 {
		weight = 1
	}
	var minSum float64
	for _, c := range s.clients {
		minSum += c.minBW
	}
	if minSum+minBW > s.ulub {
		s.rejected++
		return nil, false
	}
	c := &Client{name: name, sup: s, minBW: minBW, weight: weight}
	s.clients = append(s.clients, c)
	return c, true
}

// Weight returns the client's compression weight.
func (c *Client) Weight() float64 { return c.weight }

// Unregister removes a client, releasing its bandwidth.
func (s *Supervisor) Unregister(c *Client) {
	for i, x := range s.clients {
		if x == c {
			s.clients = append(s.clients[:i], s.clients[i+1:]...)
			c.sup = nil
			return
		}
	}
}

// Request submits a reservation request (budget, period) for the
// client and returns the granted budget for the same period. If the
// sum of requests fits under U_lub the request is granted in full
// (Q_s = Q_req); otherwise every active client is compressed.
//
// Note that compression re-evaluates *all* clients; the supervisor
// adjusts only the caller's grant here, and the surrounding machinery
// applies other clients' new grants at their own next activation —
// matching the asynchronous task controllers of the paper.
func (c *Client) Request(budget, period simtime.Duration) simtime.Duration {
	if c.sup == nil {
		panic("supervisor: request from unregistered client")
	}
	if period <= 0 || budget < 0 {
		panic(fmt.Sprintf("supervisor: invalid request Q=%v T=%v", budget, period))
	}
	c.requested = float64(budget) / float64(period)
	c.period = period
	c.active = true
	c.sup.recompute()
	c.sup.grants++
	if c.granted < c.requested {
		c.sup.compressed++
	}
	return simtime.Duration(c.granted * float64(period))
}

// Release marks the client inactive, freeing its bandwidth (a legacy
// application that went quiet).
func (c *Client) Release() {
	c.requested = 0
	c.granted = 0
	c.active = false
	if c.sup != nil {
		c.sup.recompute()
	}
}

// Granted returns the client's current granted bandwidth.
func (c *Client) Granted() float64 { return c.granted }

// Requested returns the client's current requested bandwidth.
func (c *Client) Requested() float64 { return c.requested }

// recompute redistributes bandwidth across all active clients:
// grant_i = min_i + residual * (req_i - min_i) / Σ(req - min),
// with grants never exceeding requests.
func (s *Supervisor) recompute() {
	var reqSum float64
	for _, c := range s.clients {
		if c.active {
			reqSum += c.requested
		}
	}
	s.lastTotal = reqSum
	if reqSum <= s.ulub {
		s.lastPressed = false
		for _, c := range s.clients {
			if c.active {
				c.granted = c.requested
			}
		}
		return
	}
	s.lastPressed = true
	// Guaranteed floors first (capped by the request itself).
	var floorSum float64
	for _, c := range s.clients {
		if !c.active {
			continue
		}
		floor := c.minBW
		if floor > c.requested {
			floor = c.requested
		}
		c.granted = floor
		floorSum += floor
	}
	residual := s.ulub - floorSum
	if residual <= 0 {
		return
	}
	// Distribute the residual proportionally to weight × demand above
	// floor, iterating because a client capped at its request returns
	// the excess to the pool. Sorting by headroom-per-weight makes one
	// pass per saturated client sufficient.
	type slot struct {
		c        *Client
		headroom float64
		claim    float64 // weight * headroom
	}
	var slots []slot
	var claimSum float64
	for _, c := range s.clients {
		if !c.active {
			continue
		}
		h := c.requested - c.granted
		if h > 0 {
			sl := slot{c, h, c.weight * h}
			slots = append(slots, sl)
			claimSum += sl.claim
		}
	}
	sort.Slice(slots, func(i, j int) bool {
		return slots[i].headroom/slots[i].c.weight < slots[j].headroom/slots[j].c.weight
	})
	for _, sl := range slots {
		if claimSum <= 0 || residual <= 0 {
			break
		}
		share := residual * sl.claim / claimSum
		if share > sl.headroom {
			share = sl.headroom
		}
		sl.c.granted += share
		residual -= share
		claimSum -= sl.claim
	}
}

// TotalGranted returns the sum of granted bandwidths.
func (s *Supervisor) TotalGranted() float64 {
	var sum float64
	for _, c := range s.clients {
		if c.active {
			sum += c.granted
		}
	}
	return sum
}

// TotalRequested returns the sum of requested bandwidths.
func (s *Supervisor) TotalRequested() float64 { return s.lastTotal }

// Saturated reports whether the last recompute had to compress.
func (s *Supervisor) Saturated() bool { return s.lastPressed }

// Stats returns (grants, compressed grants, rejected registrations).
func (s *Supervisor) Stats() (grants, compressed, rejected int) {
	return s.grants, s.compressed, s.rejected
}
