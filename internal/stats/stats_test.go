package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Errorf("Std = %v", s.Std)
	}
	if s.SecondLargest != 4 || s.SecondSmallest != 2 {
		t.Errorf("order stats wrong: %+v", s)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary wrong")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.SecondLargest != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10, 20, 30}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 30}, {0.5, 15}, {1.0 / 3, 10}, {0.25, 7.5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); !almost(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(empty) not NaN")
	}
}

func TestMeanStdMinMax(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Std(xs); !almost(got, 2.138, 0.001) {
		t.Errorf("Std = %v", got)
	}
	if Max(xs) != 9 || Min(xs) != 2 {
		t.Error("Max/Min wrong")
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Min(nil)) {
		t.Error("empty-sample sentinels wrong")
	}
	if Std([]float64{1}) != 0 {
		t.Error("Std of singleton not 0")
	}
}

func TestPMF(t *testing.T) {
	xs := []float64{0.1, 0.2, 1.1, 1.2, 1.3, 2.5}
	bins := PMF(xs, 1.0)
	if len(bins) != 3 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0].Count != 2 || bins[1].Count != 3 || bins[2].Count != 1 {
		t.Errorf("counts wrong: %v", bins)
	}
	var mass float64
	for _, b := range bins {
		mass += b.Mass
	}
	if !almost(mass, 1, 1e-12) {
		t.Errorf("total mass %v", mass)
	}
	if bins[0].Center != 0.5 || bins[1].Center != 1.5 {
		t.Errorf("centers wrong: %v", bins)
	}
}

func TestPMFNegativeValuesAndPanics(t *testing.T) {
	bins := PMF([]float64{-0.5, 0.5}, 1)
	if len(bins) != 2 || bins[0].Center != -0.5 {
		t.Errorf("negative binning wrong: %v", bins)
	}
	defer func() {
		if recover() == nil {
			t.Error("PMF with zero width did not panic")
		}
	}()
	PMF([]float64{1}, 0)
}

func TestCDF(t *testing.T) {
	xs := []float64{3, 1, 2, 2}
	cdf := CDF(xs)
	if len(cdf) != 3 {
		t.Fatalf("cdf = %v", cdf)
	}
	if cdf[0].X != 1 || !almost(cdf[0].P, 0.25, 1e-12) {
		t.Errorf("cdf[0] = %v", cdf[0])
	}
	if cdf[1].X != 2 || !almost(cdf[1].P, 0.75, 1e-12) {
		t.Errorf("cdf[1] = %v", cdf[1])
	}
	if cdf[2].X != 3 || cdf[2].P != 1 {
		t.Errorf("cdf[2] = %v", cdf[2])
	}
	if got := CDFAt(cdf, 2.5); !almost(got, 0.75, 1e-12) {
		t.Errorf("CDFAt(2.5) = %v", got)
	}
	if got := CDFAt(cdf, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v", got)
	}
	if CDF(nil) != nil {
		t.Error("CDF(empty) not nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	check := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		cdf := CDF(xs)
		prevX := math.Inf(-1)
		prevP := 0.0
		for _, pt := range cdf {
			if pt.X <= prevX || pt.P < prevP {
				return false
			}
			prevX, prevP = pt.X, pt.P
		}
		return len(cdf) == 0 || cdf[len(cdf)-1].P == 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit := FitLine(x, y)
	if !almost(fit.A, 1, 1e-12) || !almost(fit.B, 2, 1e-12) || !almost(fit.R2, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
}

func TestFitLineNoise(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5}
	y := []float64{0.1, 1.1, 1.9, 3.0, 4.2, 4.9}
	fit := FitLine(x, y)
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v for nearly linear data", fit.R2)
	}
	if !almost(fit.B, 1, 0.05) {
		t.Errorf("slope = %v", fit.B)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine([]float64{1}, []float64{2}); fit.B != 0 {
		t.Errorf("singleton fit = %+v", fit)
	}
	// Vertical data (all x equal): slope undefined, returns mean.
	fit := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3})
	if fit.B != 0 || !almost(fit.A, 2, 1e-12) {
		t.Errorf("vertical fit = %+v", fit)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	FitLine([]float64{1, 2}, []float64{1})
}

func TestSortedHistogram(t *testing.T) {
	h := SortedHistogram(map[string]int{"read": 3, "ioctl": 10, "write": 3})
	if len(h) != 3 || h[0].Key != "ioctl" {
		t.Fatalf("histogram = %v", h)
	}
	// Equal counts break ties by key.
	if h[1].Key != "read" || h[2].Key != "write" {
		t.Errorf("tie break wrong: %v", h)
	}
}

func TestQuantilePredictorAgainstSummary(t *testing.T) {
	// Cross-check Quantile against Summarize's percentiles.
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if !almost(s.P05, 5, 1e-9) || !almost(s.P95, 95, 1e-9) {
		t.Errorf("percentiles: %+v", s)
	}
}
