// Package stats provides the descriptive statistics the experiment
// drivers report: moments, quantiles, PMFs, CDFs and least-squares
// linear fits (used to verify the paper's linear-complexity claims).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P05, P95, P99  float64
	Sum            float64
	RelStd         float64 // Std/Mean, 0 when Mean == 0
	StdErrOfMean   float64
	SecondLargest  float64
	SecondSmallest float64
}

// Summarize computes a Summary. An empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for _, v := range xs {
		s.Sum += v
	}
	s.Mean = s.Sum / float64(s.N)
	var sq float64
	for _, v := range xs {
		d := v - s.Mean
		sq += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(sq / float64(s.N-1))
		s.StdErrOfMean = s.Std / math.Sqrt(float64(s.N))
	}
	if s.Mean != 0 {
		s.RelStd = s.Std / s.Mean
	}
	s.Min = sorted[0]
	s.Max = sorted[s.N-1]
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	if s.N > 1 {
		s.SecondLargest = sorted[s.N-2]
		s.SecondSmallest = sorted[1]
	} else {
		s.SecondLargest = s.Max
		s.SecondSmallest = s.Min
	}
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of an already sorted
// sample, with linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (NaN for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation (0 for fewer than two
// points).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sq float64
	for _, v := range xs {
		d := v - m
		sq += d * d
	}
	return math.Sqrt(sq / float64(len(xs)-1))
}

// Max returns the maximum (NaN for an empty sample).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum (NaN for an empty sample).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// PMFBin is one probability-mass bin.
type PMFBin struct {
	Center float64
	Mass   float64
	Count  int
}

// PMF bins the sample into bins of the given width aligned at zero and
// returns the non-empty bins in ascending order (Figure 11's curves).
func PMF(xs []float64, width float64) []PMFBin {
	if width <= 0 {
		panic("stats: PMF bin width must be positive")
	}
	if len(xs) == 0 {
		return nil
	}
	counts := make(map[int64]int)
	for _, v := range xs {
		counts[int64(math.Floor(v/width))]++
	}
	keys := make([]int64, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]PMFBin, 0, len(keys))
	for _, k := range keys {
		out = append(out, PMFBin{
			Center: (float64(k) + 0.5) * width,
			Mass:   float64(counts[k]) / float64(len(xs)),
			Count:  counts[k],
		})
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64
	P float64
}

// CDF returns the empirical distribution function of the sample
// (Figure 14's curves): P(X ≤ x) evaluated at each distinct sample
// value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values to their last index.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(i+1) / n})
	}
	return out
}

// CDFAt evaluates an empirical CDF at x by step interpolation.
func CDFAt(cdf []CDFPoint, x float64) float64 {
	p := 0.0
	for _, pt := range cdf {
		if pt.X > x {
			break
		}
		p = pt.P
	}
	return p
}

// LinFit is a least-squares line y = A + B·x with goodness of fit.
type LinFit struct {
	A, B float64
	R2   float64
}

// FitLine fits y = A + B·x. It panics when the lengths differ and
// returns a zero fit for fewer than two points.
func FitLine(x, y []float64) LinFit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: FitLine length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinFit{}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinFit{A: sy / n}
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n
	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		e := y[i] - (a + b*x[i])
		ssRes += e * e
		d := y[i] - meanY
		ssTot += d * d
	}
	fit := LinFit{A: a, B: b}
	if ssTot > 0 {
		fit.R2 = 1 - ssRes/ssTot
	} else {
		fit.R2 = 1
	}
	return fit
}

// Histogram counts string-keyed occurrences and returns keys sorted by
// descending count (Figure 4's bar data).
type HistEntry struct {
	Key   string
	Count int
}

// SortedHistogram converts a count map into entries sorted by
// descending count, ties broken by key.
func SortedHistogram(counts map[string]int) []HistEntry {
	out := make([]HistEntry, 0, len(counts))
	for k, v := range counts {
		out = append(out, HistEntry{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}
