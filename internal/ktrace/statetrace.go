package ktrace

import (
	"repro/internal/sched"
	"repro/internal/simtime"
)

// Pseudo syscall numbers used by the state-transition tracer, chosen
// outside the workload package's real syscall range.
const (
	// NrWakeup marks a blocked -> ready transition (sched_wakeup).
	NrWakeup = 1000
	// NrBlock marks a ready -> blocked transition (sched_switch to
	// a blocked state).
	NrBlock = 1001
)

// AttachStateTracer wires a Buffer to the scheduler's task state
// transitions, implementing the paper's Sec. 6 proposal: "trace the
// transition between blocked and ready (or executing) state in the
// kernel as an alternative to the system calls. Such information ...
// promises to be more closely related to the task temporal behaviour."
//
// Unlike syscall events, wakeup timestamps are generated *at job
// release*, before the task has competed for the CPU, so they do not
// dilate under load — which is precisely why the conjecture holds (see
// the StateTrace ablation in internal/experiments).
//
// The tracer is ftrace-like: it records from scheduler context and
// charges no per-event overhead to the traced task. The buffer's
// PID/"syscall" filters apply as usual.
func AttachStateTracer(sd *sched.Scheduler, b *Buffer) {
	sd.SetTransitionHook(func(t *sched.Task, ready bool, now simtime.Time) {
		nr := NrBlock
		if ready {
			nr = NrWakeup
		}
		b.recordOnly(now, t.PID(), nr)
	})
}

// recordOnly inserts an event subject to the filters, without charging
// any overhead (scheduler-context tracing has no tracee to bill).
func (b *Buffer) recordOnly(now simtime.Time, pid, nr int) {
	if b.kind == NoTrace {
		return
	}
	if (b.pidFilter != nil && !b.pidFilter[pid]) || (b.nrFilter != nil && !b.nrFilter[nr]) {
		b.discarded++
		return
	}
	b.ring[b.head] = Event{At: now, PID: pid, Nr: nr}
	b.head = (b.head + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	} else {
		b.dropped++
	}
	b.recorded++
}
