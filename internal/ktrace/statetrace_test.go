package ktrace_test

import (
	"testing"

	"repro/internal/ktrace"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/simtime"
)

const ms = simtime.Millisecond

func TestStateTracerRecordsTransitions(t *testing.T) {
	eng := sim.New()
	sd := sched.New(sched.Config{Engine: eng})
	buf := ktrace.NewBuffer(ktrace.QTrace, 64)
	ktrace.AttachStateTracer(sd, buf)

	task := sd.NewTask("t")
	eng.At(simtime.Time(10*ms), func() { task.Release(sched.NewJob(0, 5*ms, simtime.Never)) })
	eng.RunUntil(simtime.Time(simtime.Second))

	events := buf.Drain()
	if len(events) != 2 {
		t.Fatalf("recorded %d events, want wakeup+block", len(events))
	}
	if events[0].Nr != ktrace.NrWakeup || events[0].At != simtime.Time(10*ms) {
		t.Errorf("first event %+v, want wakeup at 10ms", events[0])
	}
	if events[1].Nr != ktrace.NrBlock || events[1].At != simtime.Time(15*ms) {
		t.Errorf("second event %+v, want block at 15ms", events[1])
	}
	if events[0].PID != task.PID() {
		t.Errorf("event PID %d, want %d", events[0].PID, task.PID())
	}
}

func TestStateTracerChargesNoOverhead(t *testing.T) {
	// ftrace-style tracing happens in scheduler context: the traced
	// task's execution demand must be untouched.
	run := func(trace bool) simtime.Time {
		eng := sim.New()
		sd := sched.New(sched.Config{Engine: eng})
		if trace {
			buf := ktrace.NewBuffer(ktrace.QTrace, 1<<12)
			ktrace.AttachStateTracer(sd, buf)
		}
		task := sd.NewTask("t")
		var done simtime.Time
		task.OnJobComplete = func(_ *sched.Job, now simtime.Time) { done = now }
		eng.At(0, func() { task.Release(sched.NewJob(0, 100*ms, simtime.Never)) })
		eng.RunUntil(simtime.Time(simtime.Second))
		return done
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("state tracing changed completion time: %v vs %v", a, b)
	}
}

func TestStateTracerRespectsFilters(t *testing.T) {
	eng := sim.New()
	sd := sched.New(sched.Config{Engine: eng})
	buf := ktrace.NewBuffer(ktrace.QTrace, 64)
	buf.FilterSyscalls(ktrace.NrWakeup)
	ktrace.AttachStateTracer(sd, buf)

	a := sd.NewTask("a")
	b := sd.NewTask("b")
	buf.FilterPIDs(a.PID())
	eng.At(0, func() {
		a.Release(sched.NewJob(0, ms, simtime.Never))
		b.Release(sched.NewJob(0, ms, simtime.Never))
	})
	eng.RunUntil(simtime.Time(simtime.Second))

	events := buf.Drain()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want only task a's wakeup", len(events))
	}
	if events[0].PID != a.PID() || events[0].Nr != ktrace.NrWakeup {
		t.Errorf("event %+v", events[0])
	}
	if buf.Discarded() == 0 {
		t.Error("filters discarded nothing")
	}
}

func TestStateTracerPeriodicTrainIsClean(t *testing.T) {
	// A periodic task's wakeup train recorded by the state tracer must
	// be exactly periodic even with a competing reservation.
	eng := sim.New()
	sd := sched.New(sched.Config{Engine: eng})
	buf := ktrace.NewBuffer(ktrace.QTrace, 1<<12)
	ktrace.AttachStateTracer(sd, buf)

	srv := sd.NewServer("rt", 6*ms, 10*ms, sched.HardCBS)
	rt := sd.NewTask("rt")
	rt.AttachTo(srv, 0)
	eng.At(0, func() { rt.Release(sched.NewJob(0, simtime.Duration(10*simtime.Second), simtime.Never)) })

	task := sd.NewTask("periodic")
	buf.FilterPIDs(task.PID())
	buf.FilterSyscalls(ktrace.NrWakeup)
	period := 25 * ms
	next := simtime.Time(0)
	var release func()
	release = func() {
		task.Release(sched.NewJob(0, 2*ms, simtime.Never))
		next = next.Add(period)
		eng.At(next, release)
	}
	eng.At(0, release)
	eng.RunUntil(simtime.Time(2 * simtime.Second))

	events := buf.Drain()
	if len(events) < 70 {
		t.Fatalf("only %d wakeups", len(events))
	}
	for i := 1; i < len(events); i++ {
		if gap := events[i].At.Sub(events[i-1].At); gap != period {
			t.Fatalf("wakeup gap %v at index %d, want exactly %v", gap, i, period)
		}
	}
}
