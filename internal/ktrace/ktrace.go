// Package ktrace reproduces the paper's kernel-level system-call
// tracer (Sec. 4.1): a statically allocated circular buffer that
// records a timestamp for each system call issued by a selected set of
// processes, plus a "character device" interface through which the
// user-space controller downloads batches of timestamps.
//
// The four tracers compared in Table 1 are modelled by the per-event
// CPU overhead they charge to the traced application:
//
//   - NoTrace: no recording, no overhead (the baseline row);
//   - QTrace: the paper's kernel patch — an in-kernel timestamp write
//     plus an amortised share of the batched downloads;
//   - QOSTrace: the authors' earlier ptrace-based tool — two context
//     switches per call, partially amortised;
//   - STrace: stock strace — two context switches plus user-space
//     decoding per call.
//
// The overhead is returned to the workload, which extends the running
// job's demand by that amount: the slowdown emerges from scheduling
// rather than being bolted onto the result.
package ktrace

import (
	"fmt"

	"repro/internal/simtime"
)

// Kind selects one of the tracers compared in Table 1.
type Kind int

// Tracer kinds.
const (
	NoTrace Kind = iota
	QTrace
	QOSTrace
	STrace
)

var kindNames = [...]string{
	NoTrace:  "NOTRACE",
	QTrace:   "QTRACE",
	QOSTrace: "QOSTRACE",
	STrace:   "STRACE",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// PerEventOverhead returns the CPU demand charged to the traced
// application for each recorded system call. The magnitudes are
// calibrated so that the Table 1 workload (~8400 calls over a 21s
// transcode) lands near the paper's relative overheads: 0.63%, 2.69%
// and 5.51%.
func (k Kind) PerEventOverhead() simtime.Duration {
	switch k {
	case QTrace:
		return 16 * simtime.Microsecond
	case QOSTrace:
		return 67 * simtime.Microsecond
	case STrace:
		return 138 * simtime.Microsecond
	default:
		return 0
	}
}

// Records reports whether this tracer records events at all.
func (k Kind) Records() bool { return k != NoTrace }

// Event is one recorded system call.
type Event struct {
	At  simtime.Time
	PID int
	Nr  int
}

// Buffer is the in-kernel circular event buffer. The zero value is not
// usable; use NewBuffer.
type Buffer struct {
	kind Kind

	ring    []Event
	head    int // next write position
	count   int // valid entries
	dropped int

	pidFilter map[int]bool // nil = trace all PIDs
	nrFilter  map[int]bool // nil = trace all syscalls

	recorded  int
	discarded int // filtered out
}

// NewBuffer returns a tracer of the given kind with the given ring
// capacity (the paper's statically allocated circular buffer).
func NewBuffer(kind Kind, capacity int) *Buffer {
	if capacity <= 0 {
		panic("ktrace: buffer capacity must be positive")
	}
	return &Buffer{kind: kind, ring: make([]Event, capacity)}
}

// Kind returns the tracer kind.
func (b *Buffer) Kind() Kind { return b.kind }

// FilterPIDs restricts recording to the given processes. Calling it
// with no arguments clears the filter (trace everything). This mirrors
// the paper's "selectively trace ... a specified subset of running
// processes" knob, which keeps buffer pressure and analyser noise low.
func (b *Buffer) FilterPIDs(pids ...int) {
	if len(pids) == 0 {
		b.pidFilter = nil
		return
	}
	b.pidFilter = make(map[int]bool, len(pids))
	for _, p := range pids {
		b.pidFilter[p] = true
	}
}

// FilterSyscalls restricts recording to the given syscall numbers.
// Calling it with no arguments clears the filter.
func (b *Buffer) FilterSyscalls(nrs ...int) {
	if len(nrs) == 0 {
		b.nrFilter = nil
		return
	}
	b.nrFilter = make(map[int]bool, len(nrs))
	for _, n := range nrs {
		b.nrFilter[n] = true
	}
}

// Syscall records one system call and returns the CPU overhead charged
// to the caller. It implements the workload package's SyscallSink.
// Filtered-out calls still pay a small fixed entry cost for ptrace-
// based tracers (the stop happens before the filter can be applied),
// but are free for the in-kernel tracer.
func (b *Buffer) Syscall(now simtime.Time, pid, nr int) simtime.Duration {
	if b.kind == NoTrace {
		return 0
	}
	if (b.pidFilter != nil && !b.pidFilter[pid]) || (b.nrFilter != nil && !b.nrFilter[nr]) {
		b.discarded++
		if b.kind == QOSTrace || b.kind == STrace {
			// ptrace() stops the tracee on *every* call regardless of
			// what the tracer then does with it.
			return b.kind.PerEventOverhead()
		}
		return 0
	}
	b.ring[b.head] = Event{At: now, PID: pid, Nr: nr}
	b.head = (b.head + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	} else {
		b.dropped++
	}
	b.recorded++
	return b.kind.PerEventOverhead()
}

// Len returns the number of events currently buffered.
func (b *Buffer) Len() int { return b.count }

// Recorded returns the total number of events accepted since creation.
func (b *Buffer) Recorded() int { return b.recorded }

// Discarded returns the number of events rejected by the filters.
func (b *Buffer) Discarded() int { return b.discarded }

// Dropped returns the number of events overwritten before download.
func (b *Buffer) Dropped() int { return b.dropped }

// Drain downloads and removes all buffered events in chronological
// order. This is the character-device read performed by the lfs++
// daemon each sampling period.
func (b *Buffer) Drain() []Event {
	out := b.Snapshot()
	b.count = 0
	return out
}

// Snapshot returns the buffered events in chronological order without
// consuming them.
func (b *Buffer) Snapshot() []Event {
	out := make([]Event, 0, b.count)
	start := b.head - b.count
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.count; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// DrainPID downloads and removes only the events of one process,
// leaving other processes' events buffered.
func (b *Buffer) DrainPID(pid int) []Event {
	all := b.Drain()
	var mine, rest []Event
	for _, e := range all {
		if e.PID == pid {
			mine = append(mine, e)
		} else {
			rest = append(rest, e)
		}
	}
	for _, e := range rest {
		b.ring[b.head] = e
		b.head = (b.head + 1) % len(b.ring)
		if b.count < len(b.ring) {
			b.count++
		} else {
			b.dropped++
		}
	}
	return mine
}

// Inject appends already recorded events to the buffer, preserving
// their timestamps and charging no tracing overhead — the events were
// recorded (and paid for) elsewhere. It carries a migrating task's
// undownloaded evidence from its old core's tracer into the new one,
// so a per-core-tracer machine loses no analyser input across a
// migration. Filters do not apply: the events passed them at record
// time.
func (b *Buffer) Inject(events []Event) {
	for _, e := range events {
		b.ring[b.head] = e
		b.head = (b.head + 1) % len(b.ring)
		if b.count < len(b.ring) {
			b.count++
		} else {
			b.dropped++
		}
		b.recorded++
	}
}

// Histogram returns the per-syscall event counts of the buffered
// events (Figure 4's statistic).
func (b *Buffer) Histogram() map[int]int {
	h := make(map[int]int)
	for _, e := range b.Snapshot() {
		h[e.Nr]++
	}
	return h
}

// Timestamps extracts just the instants from a batch of events, the
// form consumed by the period analyser.
func Timestamps(events []Event) []simtime.Time {
	out := make([]simtime.Time, len(events))
	for i, e := range events {
		out[i] = e.At
	}
	return out
}
