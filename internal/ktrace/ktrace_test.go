package ktrace

import (
	"testing"
	"testing/quick"

	"repro/internal/simtime"
)

func ev(ms int64, pid, nr int) (simtime.Time, int, int) {
	return simtime.Time(ms * int64(simtime.Millisecond)), pid, nr
}

func TestRecordAndDrain(t *testing.T) {
	b := NewBuffer(QTrace, 16)
	for i := int64(0); i < 5; i++ {
		b.Syscall(ev(i, 100, 1))
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d", b.Len())
	}
	events := b.Drain()
	if len(events) != 5 {
		t.Fatalf("drained %d", len(events))
	}
	for i, e := range events {
		if e.At != simtime.Time(int64(i)*int64(simtime.Millisecond)) {
			t.Errorf("event %d at %v", i, e.At)
		}
	}
	if b.Len() != 0 {
		t.Error("Drain did not empty the buffer")
	}
}

func TestRingOverwrite(t *testing.T) {
	b := NewBuffer(QTrace, 4)
	for i := int64(0); i < 10; i++ {
		b.Syscall(ev(i, 1, 1))
	}
	if b.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", b.Dropped())
	}
	events := b.Drain()
	if len(events) != 4 {
		t.Fatalf("drained %d, want 4", len(events))
	}
	// The most recent 4 must survive, in order.
	for i, e := range events {
		want := simtime.Time(int64(6+i) * int64(simtime.Millisecond))
		if e.At != want {
			t.Errorf("event %d at %v, want %v", i, e.At, want)
		}
	}
}

func TestPIDFilter(t *testing.T) {
	b := NewBuffer(QTrace, 16)
	b.FilterPIDs(7)
	b.Syscall(ev(1, 7, 1))
	b.Syscall(ev(2, 8, 1))
	b.Syscall(ev(3, 7, 2))
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
	if b.Discarded() != 1 {
		t.Errorf("Discarded = %d, want 1", b.Discarded())
	}
	b.FilterPIDs() // clear
	b.Syscall(ev(4, 8, 1))
	if b.Len() != 3 {
		t.Error("cleared PID filter still filtering")
	}
}

func TestSyscallFilter(t *testing.T) {
	b := NewBuffer(QTrace, 16)
	b.FilterSyscalls(5)
	b.Syscall(ev(1, 1, 5))
	b.Syscall(ev(2, 1, 6))
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
}

func TestOverheadPerKind(t *testing.T) {
	var prev simtime.Duration = -1
	for _, k := range []Kind{NoTrace, QTrace, QOSTrace, STrace} {
		ov := k.PerEventOverhead()
		if ov <= prev {
			t.Errorf("overhead of %v (%v) not greater than previous (%v)", k, ov, prev)
		}
		prev = ov
		b := NewBuffer(k, 8)
		got := b.Syscall(ev(1, 1, 1))
		if got != ov {
			t.Errorf("%v Syscall overhead %v, want %v", k, got, ov)
		}
	}
	if NoTrace.Records() || !QTrace.Records() {
		t.Error("Records() wrong")
	}
}

func TestNoTraceRecordsNothing(t *testing.T) {
	b := NewBuffer(NoTrace, 8)
	if ov := b.Syscall(ev(1, 1, 1)); ov != 0 {
		t.Errorf("NoTrace charged %v", ov)
	}
	if b.Len() != 0 || b.Recorded() != 0 {
		t.Error("NoTrace recorded events")
	}
}

func TestPtraceChargesFilteredCalls(t *testing.T) {
	// ptrace-based tracers stop the tracee on every syscall, so even
	// filtered-out calls cost; the in-kernel tracer filters for free.
	for _, k := range []Kind{QOSTrace, STrace} {
		b := NewBuffer(k, 8)
		b.FilterPIDs(42)
		if ov := b.Syscall(ev(1, 1, 1)); ov != k.PerEventOverhead() {
			t.Errorf("%v filtered call charged %v", k, ov)
		}
	}
	b := NewBuffer(QTrace, 8)
	b.FilterPIDs(42)
	if ov := b.Syscall(ev(1, 1, 1)); ov != 0 {
		t.Errorf("QTrace filtered call charged %v", ov)
	}
}

func TestDrainPID(t *testing.T) {
	b := NewBuffer(QTrace, 16)
	b.Syscall(ev(1, 7, 1))
	b.Syscall(ev(2, 8, 1))
	b.Syscall(ev(3, 7, 1))
	b.Syscall(ev(4, 9, 1))
	mine := b.DrainPID(7)
	if len(mine) != 2 {
		t.Fatalf("DrainPID(7) returned %d", len(mine))
	}
	rest := b.Drain()
	if len(rest) != 2 {
		t.Fatalf("remaining %d, want 2", len(rest))
	}
	if rest[0].PID != 8 || rest[1].PID != 9 {
		t.Errorf("remaining PIDs %d,%d", rest[0].PID, rest[1].PID)
	}
}

func TestSnapshotDoesNotConsume(t *testing.T) {
	b := NewBuffer(QTrace, 8)
	b.Syscall(ev(1, 1, 1))
	if len(b.Snapshot()) != 1 || b.Len() != 1 {
		t.Error("Snapshot consumed events")
	}
}

func TestHistogram(t *testing.T) {
	b := NewBuffer(QTrace, 32)
	for i := 0; i < 10; i++ {
		b.Syscall(ev(int64(i), 1, 16)) // ioctl-ish
	}
	for i := 0; i < 3; i++ {
		b.Syscall(ev(int64(20+i), 1, 0))
	}
	h := b.Histogram()
	if h[16] != 10 || h[0] != 3 {
		t.Errorf("histogram = %v", h)
	}
}

func TestTimestamps(t *testing.T) {
	events := []Event{{At: 5}, {At: 9}}
	ts := Timestamps(events)
	if len(ts) != 2 || ts[0] != 5 || ts[1] != 9 {
		t.Errorf("Timestamps = %v", ts)
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBuffer(0) did not panic")
		}
	}()
	NewBuffer(QTrace, 0)
}

func TestQuickDrainPreservesChronology(t *testing.T) {
	check := func(capSeed, n uint8) bool {
		capacity := int(capSeed%63) + 1
		b := NewBuffer(QTrace, capacity)
		for i := 0; i < int(n); i++ {
			b.Syscall(simtime.Time(i), 1, 1)
		}
		events := b.Drain()
		for i := 1; i < len(events); i++ {
			if events[i].At <= events[i-1].At {
				return false
			}
		}
		wantLen := int(n)
		if wantLen > capacity {
			wantLen = capacity
		}
		return len(events) == wantLen
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
