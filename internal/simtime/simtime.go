// Package simtime defines the time types used throughout the simulator.
//
// Simulated time is a count of nanoseconds since the start of the
// simulation. It is deliberately distinct from the standard library's
// time.Time so that simulator code can never accidentally observe the
// host clock: determinism of the whole reproduction depends on it.
package simtime

import (
	"fmt"
	"strconv"
	"strings"
)

// Time is an instant in simulated time, in nanoseconds since simulation
// start. The zero value is the simulation origin.
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Never is a sentinel instant later than any instant produced by a
// simulation. It is used for "no pending event" bookkeeping.
const Never Time = 1<<63 - 1

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the instant as a floating-point number of seconds
// since the simulation origin.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the instant as floating-point milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the instant as seconds with nanosecond precision.
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	return fmt.Sprintf("%.9fs", t.Seconds())
}

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as floating-point microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// Hertz returns the frequency, in Hz, of a cycle with period d.
// It returns 0 for non-positive durations.
func (d Duration) Hertz() float64 {
	if d <= 0 {
		return 0
	}
	return float64(Second) / float64(d)
}

// FromSeconds converts floating-point seconds to a Duration, rounding
// to the nearest nanosecond.
func FromSeconds(s float64) Duration {
	if s >= 0 {
		return Duration(s*float64(Second) + 0.5)
	}
	return Duration(s*float64(Second) - 0.5)
}

// FromMilliseconds converts floating-point milliseconds to a Duration.
func FromMilliseconds(ms float64) Duration { return FromSeconds(ms / 1e3) }

// FromHertz returns the period of a cycle at frequency hz.
// It returns 0 for non-positive frequencies.
func FromHertz(hz float64) Duration {
	if hz <= 0 {
		return 0
	}
	return FromSeconds(1 / hz)
}

// String formats the duration using the most natural unit.
func (d Duration) String() string {
	neg := d < 0
	v := d
	if neg {
		v = -v
	}
	var s string
	switch {
	case v == 0:
		return "0s"
	case v < Microsecond:
		s = strconv.FormatInt(int64(v), 10) + "ns"
	case v < Millisecond:
		s = trimZeros(fmt.Sprintf("%.3f", float64(v)/float64(Microsecond))) + "us"
	case v < Second:
		s = trimZeros(fmt.Sprintf("%.6f", float64(v)/float64(Millisecond))) + "ms"
	default:
		s = trimZeros(fmt.Sprintf("%.9f", float64(v)/float64(Second))) + "s"
	}
	if neg {
		return "-" + s
	}
	return s
}

func trimZeros(s string) string {
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinDur returns the smaller of a and b.
func MinDur(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// MaxDur returns the larger of a and b.
func MaxDur(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// Clamp restricts d to the interval [lo, hi].
func Clamp(d, lo, hi Duration) Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
