package simtime

import (
	"testing"
	"testing/quick"
)

func TestDurationConversions(t *testing.T) {
	cases := []struct {
		d    Duration
		sec  float64
		ms   float64
		usec float64
	}{
		{Second, 1, 1000, 1e6},
		{Millisecond, 0.001, 1, 1000},
		{20 * Millisecond, 0.020, 20, 20000},
		{0, 0, 0, 0},
		{-Second, -1, -1000, -1e6},
	}
	for _, c := range cases {
		if got := c.d.Seconds(); got != c.sec {
			t.Errorf("(%d).Seconds() = %v, want %v", c.d, got, c.sec)
		}
		if got := c.d.Milliseconds(); got != c.ms {
			t.Errorf("(%d).Milliseconds() = %v, want %v", c.d, got, c.ms)
		}
		if got := c.d.Microseconds(); got != c.usec {
			t.Errorf("(%d).Microseconds() = %v, want %v", c.d, got, c.usec)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms int32) bool {
		d := FromMilliseconds(float64(ms))
		return d == Duration(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSecondsRounding(t *testing.T) {
	if got := FromSeconds(1e-9 * 0.4); got != 0 {
		t.Errorf("FromSeconds(0.4ns) = %d, want 0", got)
	}
	if got := FromSeconds(1e-9 * 0.6); got != 1 {
		t.Errorf("FromSeconds(0.6ns) = %d, want 1", got)
	}
	if got := FromSeconds(-1e-9 * 0.6); got != -1 {
		t.Errorf("FromSeconds(-0.6ns) = %d, want -1", got)
	}
}

func TestHertz(t *testing.T) {
	if got := (40 * Millisecond).Hertz(); got != 25 {
		t.Errorf("40ms.Hertz() = %v, want 25", got)
	}
	if got := Duration(0).Hertz(); got != 0 {
		t.Errorf("0.Hertz() = %v, want 0", got)
	}
	if got := FromHertz(25); got != 40*Millisecond {
		t.Errorf("FromHertz(25) = %v, want 40ms", got)
	}
	if got := FromHertz(0); got != 0 {
		t.Errorf("FromHertz(0) = %v, want 0", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(100)
	if got := a.Add(50); got != Time(150) {
		t.Errorf("Add: got %d", got)
	}
	if got := a.Sub(Time(40)); got != Duration(60) {
		t.Errorf("Sub: got %d", got)
	}
	if !a.Before(Time(101)) || a.Before(Time(100)) {
		t.Error("Before misbehaves")
	}
	if !a.After(Time(99)) || a.After(Time(100)) {
		t.Error("After misbehaves")
	}
}

func TestMinMaxClamp(t *testing.T) {
	if Min(Time(1), Time(2)) != Time(1) || Min(Time(3), Time(2)) != Time(2) {
		t.Error("Min wrong")
	}
	if Max(Time(1), Time(2)) != Time(2) || Max(Time(3), Time(2)) != Time(3) {
		t.Error("Max wrong")
	}
	if MinDur(1, 2) != 1 || MaxDur(1, 2) != 2 {
		t.Error("MinDur/MaxDur wrong")
	}
	if Clamp(5, 1, 3) != 3 || Clamp(0, 1, 3) != 1 || Clamp(2, 1, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{1, "1ns"},
		{1500, "1.5us"},
		{Millisecond, "1ms"},
		{2500 * Microsecond, "2.5ms"},
		{Second, "1s"},
		{1500 * Millisecond, "1.5s"},
		{-Millisecond, "-1ms"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Never.String(); got != "never" {
		t.Errorf("Never.String() = %q", got)
	}
	if got := Time(Second).String(); got != "1.000000000s" {
		t.Errorf("1s.String() = %q", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(d, a, b int64) bool {
		lo, hi := Duration(a), Duration(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(Duration(d), lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
