package workpool

import (
	"sync/atomic"
	"testing"
)

// TestRunCoversEveryIndex checks each index runs exactly once, for
// pool sizes and batch sizes around the inline/pooled boundary.
func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		p := New(workers)
		for _, n := range []int{0, 1, 2, 3, 64, 1000} {
			hits := make([]atomic.Int64, n)
			p.Run(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
		p.Close()
	}
}

// TestNilAndZeroPool pins the inline fallbacks: the nil pool and the
// zero value both run batches on the caller, in index order.
func TestNilAndZeroPool(t *testing.T) {
	var order []int
	var nilPool *Pool
	nilPool.Run(3, func(i int) { order = append(order, i) })
	var zero Pool
	zero.Run(3, func(i int) { order = append(order, i) })
	want := []int{0, 1, 2, 0, 1, 2}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("inline order = %v, want %v", order, want)
		}
	}
	if nilPool.Workers() != 1 || zero.Workers() != 1 {
		t.Errorf("inline Workers() = %d/%d, want 1/1", nilPool.Workers(), zero.Workers())
	}
	nilPool.Close()
	zero.Close()
}

// TestCloseIsIdempotentAndRunSurvives checks Close can be called
// repeatedly and that Run after Close falls back to inline execution.
func TestCloseIsIdempotentAndRunSurvives(t *testing.T) {
	p := New(4)
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	p.Close()
	p.Close()
	if p.Workers() != 1 {
		t.Fatalf("Workers() after Close = %d, want 1", p.Workers())
	}
	var count atomic.Int64
	p.Run(8, func(int) { count.Add(1) })
	if count.Load() != 8 {
		t.Fatalf("Run after Close executed %d of 8 indices", count.Load())
	}
}

// TestUnevenWork checks the dynamic index claiming balances a batch
// whose early indices are much more expensive than the rest.
func TestUnevenWork(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sum atomic.Int64
	p.Run(100, func(i int) {
		if i < 4 {
			for k := 0; k < 1000; k++ {
				sum.Add(1)
			}
			return
		}
		sum.Add(1)
	})
	if got := sum.Load(); got != 4*1000+96 {
		t.Fatalf("sum = %d, want %d", got, 4*1000+96)
	}
}
