// Package workpool provides a persistent bounded worker pool for
// data-parallel fan-out with a barrier: Run(n, fn) executes fn(0..n-1)
// across the pool's workers and returns when every index is done.
//
// The pool exists because spawning goroutines per batch is measurable
// on hot paths that fan out thousands of times per run (the cluster
// tick advance, the per-core lane advance between causality fences):
// workers are started once and park on a channel between batches, so
// the steady-state cost of a batch is one channel send per helper and
// one atomic claim per index.
package workpool

import (
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool. The zero value and the nil pool
// both run batches inline on the caller; use New for real workers.
type Pool struct {
	bg   int // background helpers (workers - 1; the caller participates)
	work chan *batch
	once sync.Once
}

// batch is one Run invocation: the indices [0, n) claimed atomically
// by every participating goroutine.
type batch struct {
	fn   func(int)
	n    int
	next atomic.Int64
	wg   sync.WaitGroup
}

func (b *batch) drain() {
	for {
		i := int(b.next.Add(1)) - 1
		if i >= b.n {
			return
		}
		b.fn(i)
	}
}

// New returns a pool of the given total worker count (including the
// calling goroutine, which always participates in Run). workers <= 1
// starts no goroutines: every batch runs inline on the caller.
func New(workers int) *Pool {
	p := &Pool{}
	if workers > 1 {
		p.bg = workers - 1
		p.work = make(chan *batch, p.bg)
		for i := 0; i < p.bg; i++ {
			go p.worker()
		}
	}
	return p
}

func (p *Pool) worker() {
	for b := range p.work {
		b.drain()
		b.wg.Done()
	}
}

// Workers returns the total worker count, caller included (1 for the
// nil or inline pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.bg + 1
}

// Run executes fn(i) for every i in [0, n) and returns once all calls
// completed (a barrier). Indices are claimed dynamically, so uneven
// per-index cost balances across workers. With no helpers — a nil
// pool, workers <= 1, or n == 1 — the batch runs inline in index
// order on the caller. Run must not be called concurrently with
// itself on the same pool, and fn must not call Run on the same pool
// (nested batches would deadlock on the barrier).
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.bg == 0 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	b := &batch{fn: fn, n: n}
	helpers := p.bg
	if h := n - 1; h < helpers {
		helpers = h
	}
	b.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		p.work <- b
	}
	b.drain() // the caller is a worker too
	b.wg.Wait()
}

// Close retires the background workers. Idempotent; Run keeps working
// after Close (inline on the caller).
func (p *Pool) Close() {
	if p == nil || p.bg == 0 {
		return
	}
	p.once.Do(func() {
		close(p.work)
		p.bg = 0
	})
}
